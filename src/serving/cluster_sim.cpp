#include "serving/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/metrics.hpp"
#include "gpu/arch.hpp"
#include "serving/event_engine.hpp"

namespace parva::serving {
namespace {

struct Request {
  int service_id = -1;
  double arrival_ms = 0.0;
};

/// FIFO of waiting requests: a flat vector with a head cursor. pop is a
/// cursor bump, and draining into a batch is one contiguous copy; storage
/// compacts whenever the queue empties (which underloaded units do
/// constantly), so the backing vector stops reallocating at steady state.
class RequestQueue {
 public:
  bool empty() const { return head_ == store_.size(); }
  std::size_t size() const { return store_.size() - head_; }

  void push_back(const Request& request) { store_.push_back(request); }

  /// Moves the first `take` requests into `out` (appended) in one copy.
  void drain_into(std::vector<Request>& out, std::size_t take) {
    out.insert(out.end(), store_.begin() + static_cast<std::ptrdiff_t>(head_),
               store_.begin() + static_cast<std::ptrdiff_t>(head_ + take));
    head_ += take;
    compact_if_empty();
  }

  const Request* begin() const { return store_.data() + head_; }
  const Request* end() const { return store_.data() + store_.size(); }

  void clear() {
    store_.clear();
    head_ = 0;
  }

 private:
  void compact_if_empty() {
    if (head_ == store_.size()) {
      store_.clear();
      head_ = 0;
    }
  }

  std::vector<Request> store_;
  std::size_t head_ = 0;
};

/// Runtime state of one deployed unit.
struct UnitState {
  const core::DeployedUnit* unit = nullptr;
  const perfmodel::WorkloadTraits* traits = nullptr;
  RequestQueue queue;
  int idle_processes = 0;
  bool up = true;                ///< serving (false: dormant or failed)
  double busy_sm_ms = 0.0;       ///< accumulated within the measurement window
  /// Ground-truth capacity, clamped away from zero for the delay score.
  double capacity = 1e-9;
  /// Batch-pool slots currently serving on this unit (at most `procs`).
  std::vector<std::uint32_t> in_flight_slots;
  /// Requests inside those slots: the in-service half of the dispatch
  /// backlog, maintained incrementally instead of summed per arrival.
  std::size_t in_flight_requests = 0;
  /// fill_scale[take]: actual_latency_ms multiplier for a partially filled
  /// batch — the same partial/full work ratio the model computes, evaluated
  /// once per fill level instead of per batch.
  std::vector<double> fill_scale;
  /// sm_work[take]: SM-time charged for a batch of `take` requests
  /// (batch_work_ms * kSmsPerGpc), precomputed per fill level.
  std::vector<double> sm_work;
};

using BatchPool = SlotPool<std::vector<Request>>;

}  // namespace

double SimulationResult::overall_compliance() const {
  std::size_t total = 0;
  std::size_t violated = 0;
  for (const ServiceOutcome& outcome : services) {
    total += outcome.batches;
    violated += outcome.violated_batches;
  }
  return total == 0 ? 1.0
                    : 1.0 - static_cast<double>(violated) / static_cast<double>(total);
}

double SimulationResult::worst_compliance() const {
  double worst = 1.0;
  for (const ServiceOutcome& outcome : services) worst = std::min(worst, outcome.compliance());
  return worst;
}

SimulationResult ClusterSimulation::run(const SimulationOptions& options) const {
  PARVA_REQUIRE(options.duration_ms > 0.0, "duration must be positive");
  const double horizon_ms = options.warmup_ms + options.duration_ms;

  Rng master(options.seed);
  Rng arrival_rng = master.split();
  // Inter-arrival sampler: paced generator (with a phase offset per
  // service so services do not arrive in lock-step) or Poisson. The paced
  // gap of a service never changes, so it is computed once up front.
  std::vector<double> paced_gap_ms(services_.size(), 0.0);
  for (std::size_t s = 0; s < services_.size(); ++s) {
    if (services_[s].request_rate > 0.0) {
      paced_gap_ms[s] = 1.0 / (services_[s].request_rate / 1000.0);
    }
  }
  auto next_gap_ms = [&](std::size_t s) {
    if (options.arrivals == ArrivalProcess::kPoisson) {
      return arrival_rng.exponential(services_[s].request_rate / 1000.0);
    }
    return paced_gap_ms[s];
  };
  Rng service_time_rng = master.split();
  Rng dispatch_rng = master.split();

  // Per-unit runtime state. The per-fill-level latency scale and SM-work
  // tables hoist the work-model evaluations out of the batch hot path.
  std::vector<UnitState> units(deployment_->units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    units[i].unit = &deployment_->units[i];
    units[i].traits = perf_->catalog().find(deployment_->units[i].model);
    units[i].idle_processes = std::max(1, deployment_->units[i].procs);
    units[i].capacity = std::max(1e-9, deployment_->units[i].actual_throughput);
    const int batch = units[i].unit->batch;
    units[i].fill_scale.assign(static_cast<std::size_t>(batch) + 1, 1.0);
    units[i].sm_work.assign(static_cast<std::size_t>(batch) + 1, 0.0);
    if (units[i].traits != nullptr) {
      const double full =
          perfmodel::AnalyticalPerfModel::batch_work_ms(*units[i].traits, batch);
      for (int take = 1; take <= batch; ++take) {
        const double partial =
            perfmodel::AnalyticalPerfModel::batch_work_ms(*units[i].traits, take);
        if (take < batch) units[i].fill_scale[static_cast<std::size_t>(take)] = partial / full;
        units[i].sm_work[static_cast<std::size_t>(take)] = partial * gpu::kSmsPerGpc;
      }
    }
  }

  // Service index lookup and per-service unit lists, flattened into one
  // contiguous array with offsets (the dispatch path walks them on every
  // arrival), plus cached copies of the per-service scalars it touches.
  std::vector<std::uint32_t> svc_unit_off(services_.size() + 1, 0);
  std::vector<std::uint32_t> svc_unit_flat;
  svc_unit_flat.reserve(units.size());
  std::vector<int> unit_service(units.size(), -1);
  std::vector<int> svc_id(services_.size(), -1);
  std::vector<double> svc_slo_ms(services_.size(), 0.0);
  for (std::size_t s = 0; s < services_.size(); ++s) {
    svc_unit_off[s] = static_cast<std::uint32_t>(svc_unit_flat.size());
    svc_id[s] = services_[s].id;
    svc_slo_ms[s] = services_[s].slo_latency_ms;
    for (std::size_t u = 0; u < units.size(); ++u) {
      if (units[u].unit->service_id == services_[s].id) {
        svc_unit_flat.push_back(static_cast<std::uint32_t>(u));
        unit_service[u] = static_cast<int>(s);
      }
    }
  }
  svc_unit_off[services_.size()] = static_cast<std::uint32_t>(svc_unit_flat.size());

  std::vector<ServiceOutcome> outcomes(services_.size());
  for (std::size_t s = 0; s < services_.size(); ++s) {
    outcomes[s].service_id = services_[s].id;
    outcomes[s].offered_rate = services_[s].request_rate;
  }

  SimulationResult result;

  // Telemetry handles (no-op sinks when options.telemetry is null, so the
  // hot path below pays one null test per recording site). Per-service
  // series are labeled by service id; seed sweeps sharing one Telemetry
  // aggregate across runs.
  telemetry::Telemetry* tel = options.telemetry;
  const bool tel_request_events = tel != nullptr && tel->options().request_events;
  std::vector<telemetry::Counter> tel_svc_requests(services_.size());
  std::vector<telemetry::Counter> tel_svc_shed(services_.size());
  telemetry::Counter tel_batches;
  telemetry::Counter tel_violated_batches;
  telemetry::Counter tel_events_processed;
  telemetry::HistogramMetric tel_latency;
  if (tel != nullptr) {
    telemetry::MetricsRegistry& m = tel->metrics();
    tel_batches = m.counter("parva_sim_batches_total", "Batches served after warm-up");
    tel_violated_batches =
        m.counter("parva_sim_violated_batches_total", "Served batches that missed their SLO");
    tel_events_processed =
        m.counter("parva_sim_events_total", "Discrete events the engine processed");
    tel_latency = m.histogram("parva_sim_request_latency_ms",
                              telemetry::MetricsRegistry::default_latency_buckets_ms(),
                              "End-to-end request latency");
    for (std::size_t s = 0; s < services_.size(); ++s) {
      const std::string labels = "service=\"" + std::to_string(svc_id[s]) + "\"";
      tel_svc_requests[s] = m.counter("parva_sim_requests_total",
                                      "Requests completed after warm-up", labels);
      tel_svc_shed[s] =
          m.counter("parva_sim_shed_requests_total", "Requests dropped by failures", labels);
    }
  }

  // Timeline buckets cover the measurement window [warmup, horizon).
  std::vector<TimelineBucket> timeline;
  if (options.timeline_bucket_ms > 0.0) {
    const auto buckets = static_cast<std::size_t>(
        std::ceil(options.duration_ms / options.timeline_bucket_ms));
    timeline.resize(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      timeline[b].t_ms = static_cast<double>(b) * options.timeline_bucket_ms;
    }
  }
  auto bucket_of = [&](double t) -> TimelineBucket* {
    if (timeline.empty() || t < options.warmup_ms) return nullptr;
    const auto idx = static_cast<std::size_t>((t - options.warmup_ms) /
                                              options.timeline_bucket_ms);
    return idx < timeline.size() ? &timeline[idx] : nullptr;
  };

  // Event engine: flat pooled heap with (time, seq) ordering, and recycled
  // slot storage for in-flight batches (see event_engine.hpp).
  EventQueue events;
  BatchPool batches;

  auto make_event = [](double time_ms, EventKind kind, int unit_index,
                       std::uint32_t slot = 0, std::uint32_t generation = 0) {
    SimEvent event;
    event.time_ms = time_ms;
    event.kind = kind;
    event.unit_index = unit_index;
    event.slot = slot;
    event.generation = generation;
    return event;
  };

  // Per-service arrival streams, kept OUT of the heap: each service has at
  // most one pending arrival at a time, so a flat (time, seq) slot per
  // service replaces ~half the heap traffic with an O(#services) argmin
  // over a contiguous array of doubles. Streams draw seq numbers from the
  // heap's counter at exactly the moment a push would have happened, so
  // the merged order — ties included — is identical to keeping arrivals in
  // the heap. (Two streams tie only at exactly equal times, where the seq
  // pass picks the earlier-scheduled one, matching heap semantics.)
  constexpr double kNever = std::numeric_limits<double>::infinity();
  const std::size_t service_count = services_.size();
  std::vector<double> arrival_time(service_count, kNever);
  std::vector<std::uint64_t> arrival_seq(service_count, 0);
  auto earliest_arrival = [&]() {
    std::size_t best = service_count;
    double best_time = kNever;
    for (std::size_t s = 0; s < service_count; ++s) {
      if (arrival_time[s] < best_time) {
        best_time = arrival_time[s];
        best = s;
      }
    }
    if (best == service_count) return best;
    for (std::size_t s = best + 1; s < service_count; ++s) {
      if (arrival_time[s] == best_time && arrival_seq[s] < arrival_seq[best]) best = s;
    }
    return best;
  };

  // Seed the first arrival of every service (random phase).
  for (std::size_t s = 0; s < service_count; ++s) {
    if (services_[s].request_rate <= 0.0 || svc_unit_off[s + 1] == svc_unit_off[s]) continue;
    arrival_time[s] = arrival_rng.next_double() * next_gap_ms(s);
    arrival_seq[s] = events.issue_seq();
  }

  // Schedule the fault plan's device losses and the repair activations.
  if (options.fault_plan != nullptr) {
    for (const gpu::GpuFailureEvent& failure : options.fault_plan->sorted_gpu_failures()) {
      if (failure.at_ms > horizon_ms) continue;
      events.push(make_event(failure.at_ms, EventKind::kGpuFailure,
                             static_cast<int>(failure.gpu_index)));
    }
  }
  for (const UnitActivation& activation : options.activations) {
    PARVA_REQUIRE(activation.unit_index < units.size(), "activation index out of range");
    units[activation.unit_index].up = false;  // dormant until its time comes
    if (activation.at_ms <= horizon_ms) {
      events.push(make_event(activation.at_ms, EventKind::kUnitActivate,
                             static_cast<int>(activation.unit_index)));
    }
  }
  double recovered_at = options.recovered_at_ms;
  if (recovered_at <= 0.0) {
    for (const UnitActivation& activation : options.activations) {
      recovered_at = std::max(recovered_at, activation.at_ms);
    }
  }

  auto phase_of = [&](double t) -> PhaseStats* {
    if (result.failure_at_ms < 0.0 || t < result.failure_at_ms) return &result.pre_failure;
    return (recovered_at > 0.0 && t >= recovered_at) ? &result.post_recovery
                                                     : &result.degraded;
  };

  auto shed_requests = [&](const Request* first, const Request* last, double now) {
    for (const Request* request = first; request != last; ++request) {
      if (request->arrival_ms < options.warmup_ms) continue;
      for (std::size_t s = 0; s < services_.size(); ++s) {
        if (services_[s].id != request->service_id) continue;
        ++outcomes[s].shed_requests;
        tel_svc_shed[s].inc();
        break;
      }
      ++phase_of(now)->shed_requests;
      if (TimelineBucket* bucket = bucket_of(now)) ++bucket->shed_requests;
      if (tel != nullptr) {
        tel->events().record(telemetry::EventKind::kRequestShed, now, /*gpu=*/-1,
                             request->service_id);
      }
    }
  };

  auto start_batch_if_possible = [&](std::size_t ui, double now) {
    UnitState& state = units[ui];
    while (state.up && state.idle_processes > 0 && !state.queue.empty()) {
      const auto take = std::min<std::size_t>(static_cast<std::size_t>(state.unit->batch),
                                              state.queue.size());
      const std::uint32_t slot = batches.acquire();
      state.queue.drain_into(batches[slot].payload, take);
      // Service time: ground-truth full-batch latency scaled to the fill
      // level through the work model (partial batches finish faster, via
      // the precomputed fill_scale table), with multiplicative jitter.
      double service_ms = state.unit->actual_latency_ms * state.fill_scale[take];
      service_ms = perfmodel::AnalyticalPerfModel::sample_latency_ms(service_ms,
                                                                     service_time_rng);
      // Charge SM-time (Eq. 3 numerator) within the measurement window.
      if (state.traits != nullptr && now >= options.warmup_ms) {
        state.busy_sm_ms += state.sm_work[take];
      }
      --state.idle_processes;
      state.in_flight_slots.push_back(slot);
      state.in_flight_requests += take;
      events.push(make_event(now + service_ms, EventKind::kBatchComplete,
                             static_cast<int>(ui), slot, batches[slot].generation));
    }
  };

  double now = 0.0;
  std::size_t events_processed = 0;
  std::size_t arrival_s = earliest_arrival();
  while (arrival_s != service_count || !events.empty()) {
    // Merge the arrival streams with the heap on (time, seq): an arrival
    // fires when it precedes the heap top in the global event order.
    const bool take_arrival =
        arrival_s != service_count &&
        (events.empty() || arrival_time[arrival_s] < events.top().time_ms ||
         (arrival_time[arrival_s] == events.top().time_ms &&
          arrival_seq[arrival_s] < events.top().seq));

    if (take_arrival) {
      const std::size_t s = arrival_s;
      now = arrival_time[s];
      ++events_processed;
      arrival_time[s] = kNever;
      if (now > horizon_ms) {
        arrival_s = earliest_arrival();
        continue;
      }
      // Dispatch to the live unit with the smallest expected delay: backlog
      // (queued + in service) over ground-truth capacity. A service whose
      // every unit is down (mid-failure, pre-repair) sheds the request —
      // the front end has nowhere to send it.
      const std::uint32_t cand_begin = svc_unit_off[s];
      const std::uint32_t cand_end = svc_unit_off[s + 1];
      bool any_live = false;
      std::size_t chosen = 0;
      if (cand_end - cand_begin == 1) {
        // Single-unit service (the common case): the choice is forced, so
        // the delay score is never compared against anything.
        chosen = svc_unit_flat[cand_begin];
        any_live = units[chosen].up;
      } else {
        double best_score = 0.0;
        for (std::uint32_t idx = cand_begin; idx < cand_end; ++idx) {
          const UnitState& state = units[svc_unit_flat[idx]];
          if (!state.up) continue;
          const double backlog =
              static_cast<double>(state.queue.size() + state.in_flight_requests);
          const double score = backlog / state.capacity;
          if (!any_live || score < best_score) {
            any_live = true;
            best_score = score;
            chosen = svc_unit_flat[idx];
          }
        }
      }
      (void)dispatch_rng;
      if (!any_live) {
        const Request lost{svc_id[s], now};
        shed_requests(&lost, &lost + 1, now);
      } else {
        units[chosen].queue.push_back(Request{svc_id[s], now});
        start_batch_if_possible(chosen, now);
      }

      // Schedule the next arrival of this service.
      const double next = now + next_gap_ms(s);
      if (next <= horizon_ms) {
        arrival_time[s] = next;
        arrival_seq[s] = events.issue_seq();
      }
      arrival_s = earliest_arrival();
      continue;
    }

    const SimEvent event = events.pop();
    now = event.time_ms;
    ++events_processed;
    if (event.kind == EventKind::kGpuFailure) {
      // XID-style device loss: every unit on the GPU stops serving; its
      // queue and in-flight batches are shed (the device reset destroys
      // the processes mid-request). Releasing the slots bumps their
      // generations, so the already-queued completions go stale.
      const int gpu = event.unit_index;
      if (result.failure_at_ms < 0.0) result.failure_at_ms = now;
      if (tel != nullptr) {
        tel->events().record(telemetry::EventKind::kGpuFailure, now, gpu);
      }
      for (std::size_t ui = 0; ui < units.size(); ++ui) {
        UnitState& state = units[ui];
        if (state.unit->gpu_index != gpu || !state.up) continue;
        state.up = false;
        shed_requests(state.queue.begin(), state.queue.end(), now);
        state.queue.clear();
        for (std::uint32_t slot : state.in_flight_slots) {
          const std::vector<Request>& payload = batches[slot].payload;
          shed_requests(payload.data(), payload.data() + payload.size(), now);
          batches.release(slot);
        }
        state.in_flight_slots.clear();
        state.in_flight_requests = 0;
        state.idle_processes = 0;
      }
    } else if (event.kind == EventKind::kUnitActivate) {
      // A repair replacement comes online with a full complement of idle
      // processes and an empty queue; the dispatcher starts routing to it
      // on the next arrival.
      const auto ui = static_cast<std::size_t>(event.unit_index);
      UnitState& state = units[ui];
      state.up = true;
      state.idle_processes = std::max(1, state.unit->procs);
      if (tel != nullptr) {
        tel->events().record(telemetry::EventKind::kUnitActivated, now,
                             state.unit->gpu_index, state.unit->service_id);
      }
      start_batch_if_possible(ui, now);
    } else {
      const auto ui = static_cast<std::size_t>(event.unit_index);
      UnitState& state = units[ui];
      if (!batches.current(event.slot, event.generation)) continue;  // died with its GPU
      const std::vector<Request>& requests = batches[event.slot].payload;
      ++state.idle_processes;
      const auto slot_it =
          std::find(state.in_flight_slots.begin(), state.in_flight_slots.end(), event.slot);
      PARVA_CHECK(slot_it != state.in_flight_slots.end(),
                  "completion without in-flight batch");
      *slot_it = state.in_flight_slots.back();
      state.in_flight_slots.pop_back();
      state.in_flight_requests -= requests.size();

      // Account the batch against its service (skip warm-up).
      if (!requests.empty() && requests.front().arrival_ms >= options.warmup_ms) {
        const int s_idx = unit_service[ui];
        PARVA_CHECK(s_idx >= 0, "unit without a service");
        const auto s = static_cast<std::size_t>(s_idx);
        ServiceOutcome& outcome = outcomes[s];
        PhaseStats* phase = phase_of(now);  // by completion time
        ++outcome.batches;
        tel_batches.inc();
        bool violated = false;
        for (const Request& request : requests) {
          const double latency = now - request.arrival_ms;
          outcome.request_latency_ms.add(latency);
          ++outcome.requests;
          ++phase->requests;
          tel_latency.observe(latency);
          tel_svc_requests[s].inc();
          if (latency > svc_slo_ms[s]) {
            violated = true;
            ++phase->violated_requests;
          }
        }
        if (violated) {
          ++outcome.violated_batches;
          tel_violated_batches.inc();
        }
        if (tel_request_events) {
          tel->events().record(telemetry::EventKind::kBatchCompleted, now,
                               state.unit->gpu_index, svc_id[s],
                               static_cast<double>(requests.size()));
        }

        // Phase + timeline accounting, by completion time.
        ++phase->batches;
        if (violated) ++phase->violated_batches;
        if (TimelineBucket* bucket = bucket_of(now)) {
          ++bucket->batches;
          if (violated) ++bucket->violated_batches;
        }
      }
      batches.release(event.slot);
      start_batch_if_possible(ui, now);
    }
  }
  result.events_processed = events_processed;
  tel_events_processed.inc(static_cast<double>(events_processed));

  for (std::size_t s = 0; s < services_.size(); ++s) {
    outcomes[s].measured_rate =
        static_cast<double>(outcomes[s].requests) / (options.duration_ms / 1000.0);
    result.requests_shed += outcomes[s].shed_requests;
  }
  result.services = std::move(outcomes);
  if (result.failure_at_ms >= 0.0 && recovered_at > 0.0) {
    result.recovered_at_ms = recovered_at;
  }
  result.timeline = std::move(timeline);

  result.unit_activity.reserve(units.size());
  for (const UnitState& state : units) {
    const double granted_sm_ms =
        state.unit->gpc_grant * gpu::kSmsPerGpc * options.duration_ms;
    result.unit_activity.push_back(granted_sm_ms <= 0.0 ? 0.0
                                                        : state.busy_sm_ms / granted_sm_ms);
  }
  result.internal_slack =
      core::internal_slack_from_activity(*deployment_, result.unit_activity);
  return result;
}

}  // namespace parva::serving
