#include "serving/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <set>

#include "core/metrics.hpp"
#include "gpu/arch.hpp"

namespace parva::serving {
namespace {

struct Request {
  int service_id = -1;
  double arrival_ms = 0.0;
};

/// Event kinds, ordered by time in the priority queue.
enum class EventKind { kArrival, kBatchComplete, kGpuFailure, kUnitActivate };

struct Event {
  double time_ms = 0.0;
  EventKind kind = EventKind::kArrival;
  int service_index = -1;        ///< for arrivals
  int unit_index = -1;           ///< completions/activations: unit; failures: gpu
  std::uint64_t batch_id = 0;    ///< for completions
};

struct EventLater {
  bool operator()(const Event& a, const Event& b) const { return a.time_ms > b.time_ms; }
};

/// Runtime state of one deployed unit.
struct UnitState {
  const core::DeployedUnit* unit = nullptr;
  const perfmodel::WorkloadTraits* traits = nullptr;
  std::deque<Request> queue;
  int idle_processes = 0;
  bool up = true;                ///< serving (false: dormant or failed)
  double busy_sm_ms = 0.0;       ///< accumulated within the measurement window
};

struct InFlightBatch {
  std::vector<Request> requests;
};

}  // namespace

double SimulationResult::overall_compliance() const {
  std::size_t total = 0;
  std::size_t violated = 0;
  for (const ServiceOutcome& outcome : services) {
    total += outcome.batches;
    violated += outcome.violated_batches;
  }
  return total == 0 ? 1.0
                    : 1.0 - static_cast<double>(violated) / static_cast<double>(total);
}

double SimulationResult::worst_compliance() const {
  double worst = 1.0;
  for (const ServiceOutcome& outcome : services) worst = std::min(worst, outcome.compliance());
  return worst;
}

SimulationResult ClusterSimulation::run(const SimulationOptions& options) const {
  PARVA_REQUIRE(options.duration_ms > 0.0, "duration must be positive");
  const double horizon_ms = options.warmup_ms + options.duration_ms;

  Rng master(options.seed);
  Rng arrival_rng = master.split();
  // Inter-arrival sampler: paced generator (with a phase offset per
  // service so services do not arrive in lock-step) or Poisson.
  auto next_gap_ms = [&](double rate_per_s) {
    const double rate_per_ms = rate_per_s / 1000.0;
    if (options.arrivals == ArrivalProcess::kPoisson) {
      return arrival_rng.exponential(rate_per_ms);
    }
    return 1.0 / rate_per_ms;
  };
  Rng service_time_rng = master.split();
  Rng dispatch_rng = master.split();

  // Per-unit runtime state.
  std::vector<UnitState> units(deployment_->units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    units[i].unit = &deployment_->units[i];
    units[i].traits = perf_->catalog().find(deployment_->units[i].model);
    units[i].idle_processes = std::max(1, deployment_->units[i].procs);
  }

  // Service index lookup and per-service unit lists.
  std::vector<std::vector<std::size_t>> service_units(services_.size());
  std::vector<int> unit_service(units.size(), -1);
  for (std::size_t s = 0; s < services_.size(); ++s) {
    for (std::size_t u = 0; u < units.size(); ++u) {
      if (units[u].unit->service_id == services_[s].id) {
        service_units[s].push_back(u);
        unit_service[u] = static_cast<int>(s);
      }
    }
  }

  std::vector<ServiceOutcome> outcomes(services_.size());
  for (std::size_t s = 0; s < services_.size(); ++s) {
    outcomes[s].service_id = services_[s].id;
    outcomes[s].offered_rate = services_[s].request_rate;
  }

  SimulationResult result;

  // Timeline buckets cover the measurement window [warmup, horizon).
  std::vector<TimelineBucket> timeline;
  if (options.timeline_bucket_ms > 0.0) {
    const auto buckets = static_cast<std::size_t>(
        std::ceil(options.duration_ms / options.timeline_bucket_ms));
    timeline.resize(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      timeline[b].t_ms = static_cast<double>(b) * options.timeline_bucket_ms;
    }
  }
  auto bucket_of = [&](double t) -> TimelineBucket* {
    if (timeline.empty() || t < options.warmup_ms) return nullptr;
    const auto idx = static_cast<std::size_t>((t - options.warmup_ms) /
                                              options.timeline_bucket_ms);
    return idx < timeline.size() ? &timeline[idx] : nullptr;
  };

  std::priority_queue<Event, std::vector<Event>, EventLater> events;
  // Batches in flight, keyed by a cluster-wide id: service-time jitter can
  // complete a later-issued batch first, so completions carry their id.
  std::vector<std::map<std::uint64_t, InFlightBatch>> in_flight(units.size());
  // Batches erased by a device loss; their already-queued completion events
  // are skipped when they surface.
  std::set<std::uint64_t> dropped_batches;
  std::uint64_t next_batch_id = 0;

  // Seed the first arrival of every service (random phase).
  for (std::size_t s = 0; s < services_.size(); ++s) {
    if (services_[s].request_rate <= 0.0 || service_units[s].empty()) continue;
    const double phase = arrival_rng.next_double() * next_gap_ms(services_[s].request_rate);
    events.push(Event{phase, EventKind::kArrival, static_cast<int>(s), -1, 0});
  }

  // Schedule the fault plan's device losses and the repair activations.
  if (options.fault_plan != nullptr) {
    for (const gpu::GpuFailureEvent& failure : options.fault_plan->sorted_gpu_failures()) {
      if (failure.at_ms > horizon_ms) continue;
      events.push(Event{failure.at_ms, EventKind::kGpuFailure, -1,
                        static_cast<int>(failure.gpu_index), 0});
    }
  }
  for (const UnitActivation& activation : options.activations) {
    PARVA_REQUIRE(activation.unit_index < units.size(), "activation index out of range");
    units[activation.unit_index].up = false;  // dormant until its time comes
    if (activation.at_ms <= horizon_ms) {
      events.push(Event{activation.at_ms, EventKind::kUnitActivate, -1,
                        static_cast<int>(activation.unit_index), 0});
    }
  }
  double recovered_at = options.recovered_at_ms;
  if (recovered_at <= 0.0) {
    for (const UnitActivation& activation : options.activations) {
      recovered_at = std::max(recovered_at, activation.at_ms);
    }
  }

  auto phase_of = [&](double t) -> PhaseStats* {
    if (result.failure_at_ms < 0.0 || t < result.failure_at_ms) return &result.pre_failure;
    return (recovered_at > 0.0 && t >= recovered_at) ? &result.post_recovery
                                                     : &result.degraded;
  };

  auto shed_requests = [&](const std::vector<Request>& requests, double now) {
    for (const Request& request : requests) {
      if (request.arrival_ms < options.warmup_ms) continue;
      for (std::size_t s = 0; s < services_.size(); ++s) {
        if (services_[s].id != request.service_id) continue;
        ++outcomes[s].shed_requests;
        break;
      }
      ++phase_of(now)->shed_requests;
      if (TimelineBucket* bucket = bucket_of(now)) ++bucket->shed_requests;
    }
  };

  auto start_batch_if_possible = [&](std::size_t ui, double now) {
    UnitState& state = units[ui];
    while (state.up && state.idle_processes > 0 && !state.queue.empty()) {
      const int take = std::min<std::size_t>(static_cast<std::size_t>(state.unit->batch),
                                             state.queue.size());
      InFlightBatch batch;
      batch.requests.reserve(static_cast<std::size_t>(take));
      for (int i = 0; i < take; ++i) {
        batch.requests.push_back(state.queue.front());
        state.queue.pop_front();
      }
      // Service time: ground-truth full-batch latency scaled to the fill
      // level through the work model (partial batches finish faster), with
      // multiplicative jitter.
      double service_ms = state.unit->actual_latency_ms;
      if (state.traits != nullptr && take < state.unit->batch) {
        const double full = perfmodel::AnalyticalPerfModel::batch_work_ms(
            *state.traits, state.unit->batch);
        const double partial =
            perfmodel::AnalyticalPerfModel::batch_work_ms(*state.traits, take);
        service_ms *= partial / full;
      }
      service_ms = perfmodel::AnalyticalPerfModel::sample_latency_ms(service_ms,
                                                                     service_time_rng);
      // Charge SM-time (Eq. 3 numerator) within the measurement window.
      if (state.traits != nullptr && now >= options.warmup_ms) {
        state.busy_sm_ms += perfmodel::AnalyticalPerfModel::batch_work_ms(*state.traits, take) *
                            gpu::kSmsPerGpc;
      }
      --state.idle_processes;
      const std::uint64_t id = next_batch_id++;
      in_flight[ui].emplace(id, std::move(batch));
      events.push(Event{now + service_ms, EventKind::kBatchComplete, -1,
                        static_cast<int>(ui), id});
    }
  };

  double now = 0.0;
  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    now = event.time_ms;
    if (now > horizon_ms && event.kind == EventKind::kArrival) continue;

    if (event.kind == EventKind::kArrival) {
      const auto s = static_cast<std::size_t>(event.service_index);
      // Dispatch to the live unit with the smallest expected delay: backlog
      // (queued + in service) over ground-truth capacity. A service whose
      // every unit is down (mid-failure, pre-repair) sheds the request —
      // the front end has nowhere to send it.
      const auto& candidates = service_units[s];
      bool any_live = false;
      std::size_t chosen = 0;
      double best_score = 0.0;
      for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
        const UnitState& state = units[candidates[idx]];
        if (!state.up) continue;
        double backlog = static_cast<double>(state.queue.size());
        for (const auto& [id, pending] : in_flight[candidates[idx]]) {
          backlog += static_cast<double>(pending.requests.size());
        }
        const double capacity = std::max(1e-9, state.unit->actual_throughput);
        const double score = backlog / capacity;
        if (!any_live || score < best_score) {
          any_live = true;
          best_score = score;
          chosen = candidates[idx];
        }
      }
      (void)dispatch_rng;
      if (!any_live) {
        shed_requests({Request{services_[s].id, now}}, now);
      } else {
        units[chosen].queue.push_back(Request{services_[s].id, now});
        start_batch_if_possible(chosen, now);
      }

      // Schedule the next arrival of this service.
      const double next = now + next_gap_ms(services_[s].request_rate);
      if (next <= horizon_ms) {
        events.push(Event{next, EventKind::kArrival, event.service_index, -1, 0});
      }
    } else if (event.kind == EventKind::kGpuFailure) {
      // XID-style device loss: every unit on the GPU stops serving; its
      // queue and in-flight batches are shed (the device reset destroys
      // the processes mid-request).
      const int gpu = event.unit_index;
      if (result.failure_at_ms < 0.0) result.failure_at_ms = now;
      for (std::size_t ui = 0; ui < units.size(); ++ui) {
        UnitState& state = units[ui];
        if (state.unit->gpu_index != gpu || !state.up) continue;
        state.up = false;
        shed_requests({state.queue.begin(), state.queue.end()}, now);
        state.queue.clear();
        for (auto& [id, batch] : in_flight[ui]) {
          shed_requests(batch.requests, now);
          dropped_batches.insert(id);
        }
        in_flight[ui].clear();
        state.idle_processes = 0;
      }
    } else if (event.kind == EventKind::kUnitActivate) {
      // A repair replacement comes online with a full complement of idle
      // processes and an empty queue; the dispatcher starts routing to it
      // on the next arrival.
      const auto ui = static_cast<std::size_t>(event.unit_index);
      UnitState& state = units[ui];
      state.up = true;
      state.idle_processes = std::max(1, state.unit->procs);
      start_batch_if_possible(ui, now);
    } else {
      const auto ui = static_cast<std::size_t>(event.unit_index);
      UnitState& state = units[ui];
      if (dropped_batches.erase(event.batch_id) > 0) continue;  // died with its GPU
      const auto it = in_flight[ui].find(event.batch_id);
      PARVA_CHECK(it != in_flight[ui].end(), "completion without in-flight batch");
      InFlightBatch batch = std::move(it->second);
      in_flight[ui].erase(it);
      ++state.idle_processes;

      // Account the batch against its service (skip warm-up).
      if (!batch.requests.empty() && batch.requests.front().arrival_ms >= options.warmup_ms) {
        const int s_idx = unit_service[ui];
        PARVA_CHECK(s_idx >= 0, "unit without a service");
        const auto s = static_cast<std::size_t>(s_idx);
        ServiceOutcome& outcome = outcomes[s];
        PhaseStats* phase = phase_of(now);  // by completion time
        ++outcome.batches;
        bool violated = false;
        for (const Request& request : batch.requests) {
          const double latency = now - request.arrival_ms;
          outcome.request_latency_ms.add(latency);
          ++outcome.requests;
          ++phase->requests;
          if (latency > services_[s].slo_latency_ms) {
            violated = true;
            ++phase->violated_requests;
          }
        }
        if (violated) ++outcome.violated_batches;

        // Phase + timeline accounting, by completion time.
        ++phase->batches;
        if (violated) ++phase->violated_batches;
        if (TimelineBucket* bucket = bucket_of(now)) {
          ++bucket->batches;
          if (violated) ++bucket->violated_batches;
        }
      }
      start_batch_if_possible(ui, now);
    }
  }

  for (std::size_t s = 0; s < services_.size(); ++s) {
    outcomes[s].measured_rate =
        static_cast<double>(outcomes[s].requests) / (options.duration_ms / 1000.0);
    result.requests_shed += outcomes[s].shed_requests;
  }
  result.services = std::move(outcomes);
  if (result.failure_at_ms >= 0.0 && recovered_at > 0.0) {
    result.recovered_at_ms = recovered_at;
  }
  result.timeline = std::move(timeline);

  result.unit_activity.reserve(units.size());
  for (const UnitState& state : units) {
    const double granted_sm_ms =
        state.unit->gpc_grant * gpu::kSmsPerGpc * options.duration_ms;
    result.unit_activity.push_back(granted_sm_ms <= 0.0 ? 0.0
                                                        : state.busy_sm_ms / granted_sm_ms);
  }
  result.internal_slack =
      core::internal_slack_from_activity(*deployment_, result.unit_activity);
  return result;
}

}  // namespace parva::serving
