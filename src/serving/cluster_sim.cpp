#include "serving/cluster_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/thread_pool.hpp"
#include "core/metrics.hpp"
#include "gpu/arch.hpp"
#include "perfmodel/llm_model.hpp"
#include "serving/event_engine.hpp"
#include "serving/shard_engine.hpp"

namespace parva::serving {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

// Rng::stream tags come from the central RngStreamTag registry in
// common/rng.hpp (audit rule R10): one family of independent streams per
// entity kind. The LLM tags are drawn only by services carrying an
// LlmWorkload, so the arrival/jitter draw sequences of fixed-latency
// services are untouched by the generative path (the degenerate contract
// of DESIGN.md §4.7).

// Bits of the per-unit emission counter inside a BufferedRecord sub-key
// (see shard_engine.hpp: sub = (global unit + 1) << 20 | emission).
constexpr unsigned kSubEmissionBits = 20;

struct Request {
  int service_id = -1;
  double arrival_ms = 0.0;
  // Token counts drawn at arrival from the service's token stream; both
  // zero for fixed-latency services (no draws consumed).
  int prompt_tokens = 0;
  int gen_tokens = 0;
};

/// FIFO of waiting requests: a flat vector with a head cursor. pop is a
/// cursor bump, and draining into a batch is one contiguous copy; storage
/// compacts whenever the queue empties (which underloaded units do
/// constantly), so the backing vector stops reallocating at steady state.
class RequestQueue {
 public:
  bool empty() const { return head_ == store_.size(); }
  std::size_t size() const { return store_.size() - head_; }

  void push_back(const Request& request) { store_.push_back(request); }

  /// Moves the first `take` requests into `out` (appended) in one copy.
  void drain_into(std::vector<Request>& out, std::size_t take) {
    out.insert(out.end(), store_.begin() + static_cast<std::ptrdiff_t>(head_),
               store_.begin() + static_cast<std::ptrdiff_t>(head_ + take));
    head_ += take;
    compact_if_empty();
  }

  const Request* begin() const { return store_.data() + head_; }
  const Request* end() const { return store_.data() + store_.size(); }

  void clear() {
    store_.clear();
    head_ = 0;
  }

 private:
  void compact_if_empty() {
    if (head_ == store_.size()) {
      store_.clear();
      head_ = 0;
    }
  }

  std::vector<Request> store_;
  std::size_t head_ = 0;
};

/// Pool payload: the requests of one in-service batch plus the decode-phase
/// state of the generative path (untouched by fixed-latency units).
struct Batch {
  std::vector<Request> requests;
  /// Decode tokens left per request; sized at the Prefill event, empty
  /// before it (and always empty on fixed-latency units).
  std::vector<int> remaining;
  int live = 0;                  ///< requests still decoding
  double kv_bytes = 0.0;         ///< KV-ledger bytes this batch holds
  double prefill_done_ms = 0.0;  ///< first-token time (0: not prefilled yet)
  /// Victim-choice stamps from the owning unit's monotone counter.
  std::uint64_t admitted_stamp = 0;
  std::uint64_t touched_stamp = 0;
  bool measured = false;  ///< front request arrived after warm-up
  bool violated = false;  ///< some finished request missed the SLO

  void clear() {
    requests.clear();
    remaining.clear();
    live = 0;
    kv_bytes = 0.0;
    prefill_done_ms = 0.0;
    admitted_stamp = 0;
    touched_stamp = 0;
    measured = false;
    violated = false;
  }
};

/// Runtime state of one deployed unit.
struct UnitState {
  const core::DeployedUnit* unit = nullptr;
  const perfmodel::WorkloadTraits* traits = nullptr;
  RequestQueue queue;
  int idle_processes = 0;
  bool up = true;                ///< serving (false: dormant or failed)
  double busy_sm_ms = 0.0;       ///< accumulated within the measurement window
  /// Ground-truth capacity, clamped away from zero for the delay score.
  double capacity = 1e-9;
  /// Batch-pool slots currently serving on this unit (at most `procs`).
  std::vector<std::uint32_t> in_flight_slots;
  /// Requests inside those slots: the in-service half of the dispatch
  /// backlog, maintained incrementally instead of summed per arrival.
  std::size_t in_flight_requests = 0;
  /// fill_scale[take]: actual_latency_ms multiplier for a partially filled
  /// batch — the same partial/full work ratio the model computes, evaluated
  /// once per fill level instead of per batch.
  std::vector<double> fill_scale;
  /// sm_work[take]: SM-time charged for a batch of `take` requests
  /// (batch_work_ms * kSmsPerGpc), precomputed per fill level.
  std::vector<double> sm_work;

  // ---- Generative-LLM execution state (DESIGN.md §4.7). ----
  bool is_llm = false;  ///< owning service carries an LlmWorkload
  const perfmodel::LlmTraits* llm_traits = nullptr;
  /// Fraction of the profiled batch latency charged to the Prefill event;
  /// exactly 1.0 for workloads with no generation phase, so a zero-token
  /// LLM batch reproduces the fixed-latency service time bit-for-bit.
  double prefill_share = 1.0;
  double expected_prompt = 0.0;  ///< workload prompt mean (prefill anchor)
  double kv_per_token = 0.0;     ///< bytes per resident token (0: no ledger)
  double kv_capacity = 0.0;      ///< ledger capacity in bytes
  double kv_used = 0.0;
  double kv_peak = 0.0;
  std::uint64_t next_stamp = 0;  ///< admission/touch stamp source
  /// Slots currently holding ledger bytes (eviction candidates).
  std::vector<std::uint32_t> resident;
  /// decode_step_ms[live]: wall time of one decode chunk at that many live
  /// requests, precomputed from the token-rate law.
  std::vector<double> decode_step_ms;
};

using BatchPool = SlotPool<Batch>;

/// Static run parameters shared read-only by every shard. Every field is a
/// pure function of (options, deployment, services) — never of execution —
/// so shards consult them without synchronisation.
struct RunConfig {
  double warmup_ms = 0.0;
  double horizon_ms = 0.0;
  double timeline_bucket_ms = 0.0;
  std::size_t timeline_buckets = 0;
  ArrivalProcess arrivals = ArrivalProcess::kDeterministic;
  /// Canonical key of the first scheduled device loss (time < 0: none).
  /// Phase accounting compares event keys against this boundary, which is
  /// exactly the single-engine dynamic rule: an event lands pre-failure iff
  /// it precedes the failure in the global (time, seq) order.
  double first_failure_ms = -1.0;
  std::uint64_t first_failure_seq = 0;
  double recovered_at_ms = 0.0;
  bool buffer_records = false;       ///< telemetry sink attached
  bool record_batch_events = false;  ///< EventLog batch records requested
  /// Generative-LLM policies (admission/eviction/dispatch, chunking).
  LlmSimOptions llm;
  /// kBursty arrival shaping; burst_slow is derived once so the burst/slow
  /// exponential mixture preserves the offered rate.
  double burst_prob = 0.0;
  double burst_factor = 1.0;
  double burst_slow = 1.0;
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One sub-engine: the full simulation restricted to a subset of the
/// services (and their units). Between window barriers a shard is touched
/// by exactly one thread, and the barriers (ThreadPool::parallel_for joins)
/// order every handoff to and from the coordinator — the happens-before
/// discipline that replaces locks on all of this state.
struct Shard {
  const RunConfig* cfg = nullptr;

  // Services (local index -> global metadata), in ascending global order.
  std::vector<std::size_t> svc_global;
  std::vector<int> svc_id;
  std::vector<double> svc_slo_ms;
  std::vector<double> svc_rate;
  std::vector<double> paced_gap_ms;
  std::vector<Rng> arrival_rng;
  /// Per-service LLM workload (nullptr: fixed-latency service).
  std::vector<const core::LlmWorkload*> svc_llm;
  std::vector<Rng> token_rng;
  std::vector<Rng> dispatch_rng;
  std::vector<std::uint32_t> rr_cursor;  ///< round-robin dispatch state
  ArrivalStreams arrivals;
  std::size_t arrival_svc = 0;  ///< cached arrivals.earliest()

  // Units (local index -> global metadata), in ascending global order.
  std::vector<UnitState> units;
  std::vector<std::size_t> unit_global;
  std::vector<int> unit_service;  ///< local service index (-1: orphan unit)
  std::vector<Rng> jitter_rng;
  std::vector<SeqStream> completion_seq;
  std::vector<std::uint32_t> svc_unit_off;
  std::vector<std::uint32_t> svc_unit_flat;

  EventQueue events;
  BatchPool batches;

  // Accounting, merged by the coordinator after the last window.
  std::vector<ServiceOutcome> outcomes;
  PhaseStats pre_failure;
  PhaseStats degraded;
  PhaseStats post_recovery;
  std::vector<TimelineBucket> timeline;
  std::vector<BufferedRecord> records;
  std::size_t events_processed = 0;
  double busy_ms = 0.0;  ///< wall-clock spent advancing this shard

  bool idle() const { return arrival_svc == svc_global.size() && events.empty(); }

  double next_gap_ms(std::size_t s) {
    if (cfg->arrivals == ArrivalProcess::kPoisson) {
      return arrival_rng[s].exponential(svc_rate[s] / 1000.0);
    }
    if (cfg->arrivals == ArrivalProcess::kBursty) {
      // Two-phase exponential mixture: a boosted burst rate with
      // probability burst_prob, else a compensating slow rate — the mean
      // gap matches the offered rate (DESIGN.md §4.7).
      const double u = arrival_rng[s].next_double();
      const double factor = u < cfg->burst_prob ? cfg->burst_factor : cfg->burst_slow;
      return arrival_rng[s].exponential(svc_rate[s] * factor / 1000.0);
    }
    return paced_gap_ms[s];
  }

  /// Clamped-lognormal token draw: exp(N(log(mean) - s^2/2, s)) rounded to
  /// [1, max]. A zero mean produces zero tokens without touching the
  /// stream; a zero sigma produces the rounded mean with one structure for
  /// every request (still no draw — the count is exact).
  static int sample_tokens(double mean, double sigma, int max_tokens, Rng& rng) {
    if (mean <= 0.0) return 0;
    double tokens = mean;
    if (sigma > 0.0) {
      tokens = std::exp(rng.normal(std::log(mean) - 0.5 * sigma * sigma, sigma));
    }
    const double hi = static_cast<double>(std::max(max_tokens, 1));
    return static_cast<int>(std::lround(std::min(std::max(tokens, 1.0), hi)));
  }

  std::uint64_t unit_sub(std::size_t ui) const {
    return (static_cast<std::uint64_t>(unit_global[ui]) + 1) << kSubEmissionBits;
  }

  PhaseStats* phase_of(double t, std::uint64_t seq) {
    if (cfg->first_failure_ms < 0.0 || t < cfg->first_failure_ms ||
        (t == cfg->first_failure_ms && seq < cfg->first_failure_seq)) {
      return &pre_failure;
    }
    return (cfg->recovered_at_ms > 0.0 && t >= cfg->recovered_at_ms) ? &post_recovery
                                                                     : &degraded;
  }

  TimelineBucket* bucket_of(double t) {
    if (timeline.empty() || t < cfg->warmup_ms) return nullptr;
    const auto idx =
        static_cast<std::size_t>((t - cfg->warmup_ms) / cfg->timeline_bucket_ms);
    return idx < timeline.size() ? &timeline[idx] : nullptr;
  }

  /// Accounts one request dropped by a failure while processing the event
  /// with canonical key (now, seq); `sub` serialises multiple drops under
  /// that key. Pre-warm-up requests are not measured.
  void shed_one(std::size_t s, double request_arrival_ms, double now, std::uint64_t seq,
                std::uint64_t sub) {
    if (request_arrival_ms < cfg->warmup_ms) return;
    ++outcomes[s].shed_requests;
    ++phase_of(now, seq)->shed_requests;
    if (TimelineBucket* bucket = bucket_of(now)) ++bucket->shed_requests;
    if (cfg->buffer_records) {
      records.push_back({now, seq, sub, telemetry::EventKind::kRequestShed,
                         /*gpu=*/-1, svc_id[s], 0.0});
    }
  }

  /// Removes `slot`'s ledger entry and returns its bytes to the unit's KV
  /// capacity. No-op on units whose ledger is disabled.
  void release_ledger(std::size_t ui, std::uint32_t slot) {
    UnitState& state = units[ui];
    if (state.kv_per_token <= 0.0) return;
    Batch& batch = batches[slot].payload;
    state.kv_used -= batch.kv_bytes;
    batch.kv_bytes = 0.0;
    const auto it = std::find(state.resident.begin(), state.resident.end(), slot);
    if (it != state.resident.end()) {
      *it = state.resident.back();
      state.resident.pop_back();
    }
  }

  /// Evicts one resident batch: its unfinished requests are counted as
  /// evicted, its KV bytes return to the ledger, and its process frees.
  /// Releasing the slot bumps the generation, so the batch's pending
  /// Prefill/Decode event goes stale.
  void evict_batch(std::size_t ui, std::uint32_t slot, double now, std::uint64_t seq,
                   std::uint64_t* emission) {
    UnitState& state = units[ui];
    Batch& batch = batches[slot].payload;
    const auto s = static_cast<std::size_t>(unit_service[ui]);
    std::size_t victims = 0;
    if (batch.remaining.empty()) {
      victims = batch.requests.size();  // pre-prefill: nothing finished yet
    } else {
      for (const int left : batch.remaining) {
        if (left > 0) ++victims;
      }
    }
    if (batch.measured) outcomes[s].evicted_requests += victims;
    if (cfg->buffer_records) {
      PARVA_CHECK(*emission >> kSubEmissionBits == 0, "eviction emission overflow");
      records.push_back({now, seq, unit_sub(ui) | (*emission)++,
                         telemetry::EventKind::kLlmEviction, state.unit->gpu_index,
                         svc_id[s], static_cast<double>(victims)});
    }
    release_ledger(ui, slot);
    const auto it =
        std::find(state.in_flight_slots.begin(), state.in_flight_slots.end(), slot);
    PARVA_CHECK(it != state.in_flight_slots.end(), "evicting a batch not in flight");
    *it = state.in_flight_slots.back();
    state.in_flight_slots.pop_back();
    state.in_flight_requests -= batch.requests.size();
    ++state.idle_processes;
    batches.release(slot);
  }

  /// Frees ledger capacity for `need` bytes by evicting resident batches
  /// other than `self`, oldest first by admission (FIFO) or last-touch
  /// (LRU) stamp. Stops when the need fits or no victim remains.
  void evict_until_fits(std::size_t ui, double need, std::uint32_t self, double now,
                        std::uint64_t seq, std::uint64_t* emission) {
    UnitState& state = units[ui];
    while (need > state.kv_capacity - state.kv_used) {
      bool found = false;
      std::uint32_t victim = 0;
      std::uint64_t best_stamp = 0;
      for (const std::uint32_t slot : state.resident) {
        if (slot == self) continue;
        const Batch& batch = batches[slot].payload;
        const std::uint64_t stamp = cfg->llm.eviction == LlmEvictionPolicy::kLru
                                        ? batch.touched_stamp
                                        : batch.admitted_stamp;
        if (!found || stamp < best_stamp) {
          found = true;
          best_stamp = stamp;
          victim = slot;
        }
      }
      if (!found) return;
      evict_batch(ui, victim, now, seq, emission);
    }
  }

  /// Rejects the just-drained batch in `slot`: its requests are refused
  /// admission (counted, not queued again) and the slot is released.
  void reject_batch(std::size_t ui, std::uint32_t slot, double now, std::uint64_t seq,
                    std::uint64_t* emission) {
    UnitState& state = units[ui];
    Batch& batch = batches[slot].payload;
    const auto s = static_cast<std::size_t>(unit_service[ui]);
    if (batch.measured) outcomes[s].rejected_requests += batch.requests.size();
    if (cfg->buffer_records) {
      PARVA_CHECK(*emission >> kSubEmissionBits == 0, "reject emission overflow");
      records.push_back({now, seq, unit_sub(ui) | (*emission)++,
                         telemetry::EventKind::kLlmAdmissionReject, state.unit->gpu_index,
                         svc_id[s], static_cast<double>(batch.requests.size())});
    }
    batches.release(slot);
  }

  /// KV admission for the just-drained batch. kReject reserves the full
  /// prompt+generation footprint up front (decode can never overflow);
  /// kEvict admits on prompt footprint alone and reclaims from residents
  /// when even that does not fit. Returns false when the batch was
  /// rejected (the slot is already released).
  bool admit_llm_batch(std::size_t ui, std::uint32_t slot, double now, std::uint64_t seq,
                       std::uint64_t* emission) {
    UnitState& state = units[ui];
    Batch& batch = batches[slot].payload;
    batch.measured =
        !batch.requests.empty() && batch.requests.front().arrival_ms >= cfg->warmup_ms;
    batch.admitted_stamp = ++state.next_stamp;
    batch.touched_stamp = batch.admitted_stamp;
    if (state.kv_per_token <= 0.0) return true;
    double prompt_tokens = 0.0;
    double total_tokens = 0.0;
    // The batch is summed in admission order, which is fixed per batch;
    // re-sorting here would change golden-pinned exported bytes.
    for (const Request& request : batch.requests) {
      // parva-audit: allow(R14): fixed admission order, see above.
      prompt_tokens += static_cast<double>(request.prompt_tokens);
      // parva-audit: allow(R14): fixed admission order, see above.
      total_tokens += static_cast<double>(request.prompt_tokens + request.gen_tokens);
    }
    const bool reserve_full = cfg->llm.admission == LlmAdmissionPolicy::kReject;
    const double need = state.kv_per_token * (reserve_full ? total_tokens : prompt_tokens);
    if (!reserve_full && need > state.kv_capacity - state.kv_used) {
      evict_until_fits(ui, need, slot, now, seq, emission);
    }
    if (need > state.kv_capacity - state.kv_used) {
      reject_batch(ui, slot, now, seq, emission);
      return false;
    }
    state.kv_used += need;
    batch.kv_bytes = need;
    state.kv_peak = std::max(state.kv_peak, state.kv_used);
    state.resident.push_back(slot);
    return true;
  }

  void start_batch_if_possible(std::size_t ui, double now, std::uint64_t seq,
                               std::uint64_t* emission) {
    UnitState& state = units[ui];
    while (state.up && state.idle_processes > 0 && !state.queue.empty()) {
      const auto take = std::min<std::size_t>(static_cast<std::size_t>(state.unit->batch),
                                              state.queue.size());
      const std::uint32_t slot = batches.acquire();
      Batch& batch = batches[slot].payload;
      state.queue.drain_into(batch.requests, take);
      if (state.is_llm && !admit_llm_batch(ui, slot, now, seq, emission)) {
        continue;  // rejected under memory pressure; the process stays free
      }
      // Service time: ground-truth full-batch latency scaled to the fill
      // level through the work model (partial batches finish faster, via
      // the precomputed fill_scale table), with multiplicative jitter drawn
      // from the unit's own stream — so the draw sequence of a unit is the
      // same no matter which shard hosts it.
      double service_ms = state.unit->actual_latency_ms * state.fill_scale[take];
      if (state.is_llm) {
        // The Prefill event carries the prefill share of the profiled
        // latency, scaled to the batch's actual prompt mass against the
        // workload's expectation. Both factors are exactly 1.0 for a
        // zero-token workload, keeping the product bit-identical to the
        // fixed-latency service time.
        double prompt_scale = 1.0;
        if (state.expected_prompt > 0.0) {
          double prompt_sum = 0.0;
          for (const Request& request : batch.requests) {
            // parva-audit: allow(R14): fixed admission order per batch.
            prompt_sum += static_cast<double>(request.prompt_tokens);
          }
          if (prompt_sum > 0.0) {
            prompt_scale =
                prompt_sum / (static_cast<double>(take) * state.expected_prompt);
          }
        }
        service_ms *= state.prefill_share * prompt_scale;
      }
      service_ms =
          perfmodel::AnalyticalPerfModel::sample_latency_ms(service_ms, jitter_rng[ui]);
      // Charge SM-time (Eq. 3 numerator) within the measurement window.
      if (state.traits != nullptr && now >= cfg->warmup_ms) {
        // One term per dispatched batch, not a bulk reduction.
        // parva-audit: allow(R14): deterministic DES event order.
        state.busy_sm_ms += state.sm_work[take];
      }
      --state.idle_processes;
      state.in_flight_slots.push_back(slot);
      state.in_flight_requests += take;
      SimEvent event;
      event.time_ms = now + service_ms;
      event.seq = completion_seq[ui].next();
      event.kind = state.is_llm ? EventKind::kLlmPrefillDone : EventKind::kBatchComplete;
      event.unit_index = static_cast<int>(ui);
      event.slot = slot;
      event.generation = batches[slot].generation;
      events.push(event);
    }
  }

  /// Expected-delay score of a unit for dispatch: backlog (queued + in
  /// service) over ground-truth capacity.
  double delay_score(std::size_t ui) const {
    const UnitState& state = units[ui];
    const double backlog =
        static_cast<double>(state.queue.size() + state.in_flight_requests);
    return backlog / state.capacity;
  }

  /// The default dispatch rule: the live unit with the smallest expected
  /// delay, matching a front-end load balancer. Returns units.size() when
  /// every candidate is down (mid-failure, pre-repair).
  std::size_t choose_least_loaded(std::size_t s) const {
    const std::uint32_t cand_begin = svc_unit_off[s];
    const std::uint32_t cand_end = svc_unit_off[s + 1];
    if (cand_end - cand_begin == 1) {
      // Single-unit service (the common case): the choice is forced, so
      // the delay score is never compared against anything.
      const std::size_t only = svc_unit_flat[cand_begin];
      return units[only].up ? only : units.size();
    }
    bool any_live = false;
    std::size_t chosen = 0;
    double best_score = 0.0;
    for (std::uint32_t idx = cand_begin; idx < cand_end; ++idx) {
      const std::size_t ui = svc_unit_flat[idx];
      if (!units[ui].up) continue;
      const double score = delay_score(ui);
      if (!any_live || score < best_score) {
        any_live = true;
        best_score = score;
        chosen = ui;
      }
    }
    return any_live ? chosen : units.size();
  }

  /// Replica choice for one arriving request. Fixed-latency services (and
  /// the default LLM policy) use least-loaded; LLM services can opt into
  /// round-robin or power-of-two-choices. P2C always consumes exactly two
  /// draws from the service's dispatch stream, so the stream position never
  /// depends on replica liveness.
  std::size_t dispatch_unit(std::size_t s) {
    if (svc_llm[s] == nullptr || cfg->llm.dispatch == LlmDispatchPolicy::kLeastLoaded) {
      return choose_least_loaded(s);
    }
    const std::uint32_t cand_begin = svc_unit_off[s];
    const std::uint32_t count = svc_unit_off[s + 1] - cand_begin;
    if (count == 0) return units.size();
    if (cfg->llm.dispatch == LlmDispatchPolicy::kRoundRobin) {
      // First live replica at or after the per-service cursor; the cursor
      // then moves past it so replicas take turns.
      for (std::uint32_t step = 0; step < count; ++step) {
        const std::uint32_t off = (rr_cursor[s] + step) % count;
        const std::size_t ui = svc_unit_flat[cand_begin + off];
        if (units[ui].up) {
          rr_cursor[s] = (off + 1) % count;
          return ui;
        }
      }
      return units.size();
    }
    // Power-of-two-choices: two uniform probes, lower delay score wins,
    // lower replica offset breaks ties; both probes dead falls back to the
    // full scan (a front end would retry, not drop).
    const auto a = static_cast<std::uint32_t>(dispatch_rng[s].uniform_int(0, count - 1));
    const auto b = static_cast<std::uint32_t>(dispatch_rng[s].uniform_int(0, count - 1));
    const std::size_t first = svc_unit_flat[cand_begin + std::min(a, b)];
    const std::size_t second = svc_unit_flat[cand_begin + std::max(a, b)];
    const bool first_up = units[first].up;
    const bool second_up = units[second].up;
    if (!first_up && !second_up) return choose_least_loaded(s);
    if (!second_up) return first;
    if (!first_up) return second;
    return delay_score(second) < delay_score(first) ? second : first;
  }

  void process_arrival() {
    const std::size_t s = arrival_svc;
    const double now = arrivals.time(s);
    const std::uint64_t seq = arrivals.seq(s);
    ++events_processed;
    arrivals.retire(s);
    if (now <= cfg->horizon_ms) {
      // Dispatch to a live unit (policy above); a service whose every unit
      // is down sheds the request — the front end has nowhere to send it.
      const std::size_t chosen = dispatch_unit(s);
      if (chosen == units.size()) {
        shed_one(s, now, now, seq, /*sub=*/0);
      } else {
        Request request{svc_id[s], now};
        if (const core::LlmWorkload* workload = svc_llm[s]) {
          request.prompt_tokens =
              sample_tokens(workload->prompt_tokens_mean, workload->prompt_tokens_sigma,
                            workload->prompt_tokens_max, token_rng[s]);
          request.gen_tokens =
              sample_tokens(workload->gen_tokens_mean, workload->gen_tokens_sigma,
                            workload->gen_tokens_max, token_rng[s]);
        }
        units[chosen].queue.push_back(request);
        std::uint64_t emission = 0;
        start_batch_if_possible(chosen, now, seq, &emission);
      }

      // Schedule the next arrival of this service.
      const double next = now + next_gap_ms(s);
      if (next <= cfg->horizon_ms) arrivals.arm(s, next);
    }
    arrival_svc = arrivals.earliest();
  }

  /// The fixed-latency completion path: frees the process, accounts the
  /// batch against its service (skip warm-up), releases the slot. An LLM
  /// batch with no decode work takes exactly this path from its Prefill
  /// event — the degenerate byte-identity contract (DESIGN.md §4.7).
  void complete_batch(std::size_t ui, const SimEvent& event) {
    const double now = event.time_ms;
    UnitState& state = units[ui];
    const std::vector<Request>& requests = batches[event.slot].payload.requests;
    ++state.idle_processes;
    const auto slot_it =
        std::find(state.in_flight_slots.begin(), state.in_flight_slots.end(), event.slot);
    PARVA_CHECK(slot_it != state.in_flight_slots.end(),
                "completion without in-flight batch");
    *slot_it = state.in_flight_slots.back();
    state.in_flight_slots.pop_back();
    state.in_flight_requests -= requests.size();

    // Account the batch against its service (skip warm-up).
    if (!requests.empty() && requests.front().arrival_ms >= cfg->warmup_ms) {
      const int s_idx = unit_service[ui];
      PARVA_CHECK(s_idx >= 0, "unit without a service");
      const auto s = static_cast<std::size_t>(s_idx);
      ServiceOutcome& outcome = outcomes[s];
      PhaseStats* phase = phase_of(now, event.seq);  // by completion time
      ++outcome.batches;
      bool violated = false;
      for (const Request& request : requests) {
        const double latency = now - request.arrival_ms;
        outcome.request_latency_ms.add(latency);
        ++outcome.requests;
        ++phase->requests;
        if (latency > svc_slo_ms[s]) {
          violated = true;
          ++phase->violated_requests;
        }
      }
      if (violated) ++outcome.violated_batches;
      if (cfg->record_batch_events) {
        records.push_back({now, event.seq, 0, telemetry::EventKind::kBatchCompleted,
                           state.unit->gpu_index, svc_id[s],
                           static_cast<double>(requests.size())});
      }

      // Phase + timeline accounting, by completion time.
      ++phase->batches;
      if (violated) ++phase->violated_batches;
      if (TimelineBucket* bucket = bucket_of(now)) {
        ++bucket->batches;
        if (violated) ++bucket->violated_batches;
      }
    }
    batches.release(event.slot);
    std::uint64_t emission = 0;
    start_batch_if_possible(ui, now, event.seq, &emission);
  }

  /// Accounts one finished LLM request at its completing event (the batch
  /// warm-up gate follows the fixed path: the front request decides).
  void finish_llm_request(std::size_t ui, Batch& batch, const Request& request, double now,
                          std::uint64_t seq) {
    if (!batch.measured) return;
    const auto s = static_cast<std::size_t>(unit_service[ui]);
    ServiceOutcome& outcome = outcomes[s];
    PhaseStats* phase = phase_of(now, seq);
    const double latency = now - request.arrival_ms;
    outcome.request_latency_ms.add(latency);
    if (request.gen_tokens > 0) {
      outcome.decode_latency_ms.add(now - batch.prefill_done_ms);
      outcome.generated_tokens += static_cast<std::uint64_t>(request.gen_tokens);
    }
    ++outcome.requests;
    ++phase->requests;
    if (latency > svc_slo_ms[s]) {
      batch.violated = true;
      ++phase->violated_requests;
    }
  }

  /// Pushes the next Decode event for `slot` at the current live count.
  void schedule_decode(std::size_t ui, std::uint32_t slot, double now) {
    UnitState& state = units[ui];
    const Batch& batch = batches[slot].payload;
    const auto live = std::min<std::size_t>(static_cast<std::size_t>(batch.live),
                                            state.decode_step_ms.size() - 1);
    SimEvent event;
    event.time_ms = now + state.decode_step_ms[live];
    event.seq = completion_seq[ui].next();
    event.kind = EventKind::kLlmDecodeStep;
    event.unit_index = static_cast<int>(ui);
    event.slot = slot;
    event.generation = batches[slot].generation;
    events.push(event);
  }

  /// Last decode token emitted: free the ledger, the process and the slot,
  /// and account the batch by its completion key like the fixed path.
  void finalize_llm_batch(std::size_t ui, const SimEvent& event, std::uint64_t* emission) {
    const double now = event.time_ms;
    UnitState& state = units[ui];
    Batch& batch = batches[event.slot].payload;
    release_ledger(ui, event.slot);
    ++state.idle_processes;
    const auto slot_it =
        std::find(state.in_flight_slots.begin(), state.in_flight_slots.end(), event.slot);
    PARVA_CHECK(slot_it != state.in_flight_slots.end(),
                "llm completion without in-flight batch");
    *slot_it = state.in_flight_slots.back();
    state.in_flight_slots.pop_back();
    state.in_flight_requests -= batch.requests.size();
    if (batch.measured) {
      const auto s = static_cast<std::size_t>(unit_service[ui]);
      ServiceOutcome& outcome = outcomes[s];
      PhaseStats* phase = phase_of(now, event.seq);
      ++outcome.batches;
      if (batch.violated) ++outcome.violated_batches;
      if (cfg->record_batch_events) {
        records.push_back({now, event.seq, 0, telemetry::EventKind::kBatchCompleted,
                           state.unit->gpu_index, svc_id[s],
                           static_cast<double>(batch.requests.size())});
      }
      ++phase->batches;
      if (batch.violated) ++phase->violated_batches;
      if (TimelineBucket* bucket = bucket_of(now)) {
        ++bucket->batches;
        if (batch.violated) ++bucket->violated_batches;
      }
    }
    batches.release(event.slot);
    start_batch_if_possible(ui, now, event.seq, emission);
  }

  /// Prompt pass finished. Requests with no generation complete here (time
  /// to first token IS their latency); the rest enter the decode chain.
  void on_prefill_done(std::size_t ui, const SimEvent& event) {
    const double now = event.time_ms;
    Batch& batch = batches[event.slot].payload;
    bool any_decode = false;
    for (const Request& request : batch.requests) {
      if (request.gen_tokens > 0) {
        any_decode = true;
        break;
      }
    }
    if (!any_decode) {
      // Zero-decode batch: the fixed-latency completion path, verbatim.
      release_ledger(ui, event.slot);
      complete_batch(ui, event);
      return;
    }
    batch.prefill_done_ms = now;
    if (batch.measured) {
      ServiceOutcome& outcome = outcomes[static_cast<std::size_t>(unit_service[ui])];
      for (const Request& request : batch.requests) {
        outcome.prefill_latency_ms.add(now - request.arrival_ms);
      }
    }
    batch.remaining.reserve(batch.requests.size());
    batch.live = 0;
    for (const Request& request : batch.requests) {
      batch.remaining.push_back(request.gen_tokens);
      if (request.gen_tokens > 0) ++batch.live;
    }
    for (const Request& request : batch.requests) {
      if (request.gen_tokens == 0) finish_llm_request(ui, batch, request, now, event.seq);
    }
    schedule_decode(ui, event.slot, now);
  }

  /// One decode chunk: every live request advances, the ledger grows (with
  /// evictions under memory pressure), finished requests complete.
  void on_decode_step(std::size_t ui, const SimEvent& event) {
    const double now = event.time_ms;
    UnitState& state = units[ui];
    Batch& batch = batches[event.slot].payload;
    std::uint64_t emission = 0;
    const int chunk = cfg->llm.decode_chunk_tokens;
    double grown_tokens = 0.0;
    for (const int left : batch.remaining) {
      // parva-audit: allow(R14): fixed vector index order per batch.
      if (left > 0) grown_tokens += static_cast<double>(std::min(left, chunk));
    }
    if (state.kv_per_token > 0.0 && cfg->llm.admission == LlmAdmissionPolicy::kEvict) {
      // Under kReject the growth was reserved at admission; under kEvict
      // the ledger grows live and reclaims from other residents — or, with
      // nothing left to take, sacrifices this batch itself.
      const double growth = state.kv_per_token * grown_tokens;
      if (growth > state.kv_capacity - state.kv_used) {
        evict_until_fits(ui, growth, event.slot, now, event.seq, &emission);
        if (growth > state.kv_capacity - state.kv_used) {
          evict_batch(ui, event.slot, now, event.seq, &emission);
          start_batch_if_possible(ui, now, event.seq, &emission);
          return;
        }
      }
      state.kv_used += growth;
      batch.kv_bytes += growth;
      state.kv_peak = std::max(state.kv_peak, state.kv_used);
    }
    batch.touched_stamp = ++state.next_stamp;
    for (std::size_t i = 0; i < batch.remaining.size(); ++i) {
      if (batch.remaining[i] <= 0) continue;
      batch.remaining[i] -= std::min(batch.remaining[i], chunk);
      if (batch.remaining[i] == 0) {
        --batch.live;
        finish_llm_request(ui, batch, batch.requests[i], now, event.seq);
      }
    }
    if (batch.live > 0) {
      schedule_decode(ui, event.slot, now);
      return;
    }
    finalize_llm_batch(ui, event, &emission);
  }

  void process_event(const SimEvent& event) {
    const double now = event.time_ms;
    ++events_processed;
    if (event.kind == EventKind::kUnitActivate) {
      // A repair replacement comes online with a full complement of idle
      // processes and an empty queue; the dispatcher starts routing to it
      // on the next arrival.
      const auto ui = static_cast<std::size_t>(event.unit_index);
      UnitState& state = units[ui];
      state.up = true;
      state.idle_processes = std::max(1, state.unit->procs);
      if (cfg->buffer_records) {
        records.push_back({now, event.seq, 0, telemetry::EventKind::kUnitActivated,
                           state.unit->gpu_index, state.unit->service_id, 0.0});
      }
      std::uint64_t emission = 0;
      start_batch_if_possible(ui, now, event.seq, &emission);
      return;
    }
    // Device losses are delivered by the coordinator at window barriers
    // (apply_failure), never through a shard's heap.
    PARVA_CHECK(event.kind == EventKind::kBatchComplete ||
                    event.kind == EventKind::kLlmPrefillDone ||
                    event.kind == EventKind::kLlmDecodeStep,
                "unexpected heap event kind");
    const auto ui = static_cast<std::size_t>(event.unit_index);
    if (!batches.current(event.slot, event.generation)) return;  // stale (GPU died
                                                                 // or batch evicted)
    if (event.kind == EventKind::kLlmPrefillDone) {
      on_prefill_done(ui, event);
      return;
    }
    if (event.kind == EventKind::kLlmDecodeStep) {
      on_decode_step(ui, event);
      return;
    }
    complete_batch(ui, event);
  }

  /// Processes every local event whose canonical key precedes
  /// (bound_ms, bound_seq); events at or past the bound stay pending for a
  /// later window.
  void advance(double bound_ms, std::uint64_t bound_seq) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = svc_global.size();
    while (true) {
      const bool have_arrival = arrival_svc != n;
      const bool have_event = !events.empty();
      if (!have_arrival && !have_event) break;
      // Merge the arrival streams with the heap on (time, seq): an arrival
      // fires when it precedes the heap top in the global event order.
      bool take_arrival = have_arrival;
      if (have_arrival && have_event) {
        const SimEvent& top = events.top();
        take_arrival = arrivals.time(arrival_svc) < top.time_ms ||
                       (arrivals.time(arrival_svc) == top.time_ms &&
                        arrivals.seq(arrival_svc) < top.seq);
      }
      const double t = take_arrival ? arrivals.time(arrival_svc) : events.top().time_ms;
      const std::uint64_t q = take_arrival ? arrivals.seq(arrival_svc) : events.top().seq;
      if (t > bound_ms || (t == bound_ms && q >= bound_seq)) break;
      if (take_arrival) {
        process_arrival();
      } else {
        process_event(events.pop());
      }
    }
    busy_ms += ms_since(t0);
  }

  /// XID-style device loss, delivered at a window barrier: every local unit
  /// on the GPU stops serving; its queue and in-flight batches are shed
  /// (the device reset destroys the processes mid-request). Releasing the
  /// slots bumps their generations, so the already-queued completions go
  /// stale. Shed records carry sub-keys built from the *global* unit index,
  /// so the merged stream interleaves shards exactly as a single engine's
  /// ascending unit-index loop would.
  void apply_failure(int gpu, double now, std::uint64_t seq) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t ui = 0; ui < units.size(); ++ui) {
      UnitState& state = units[ui];
      if (state.unit->gpu_index != gpu || !state.up) continue;
      state.up = false;
      // An orphan unit (no matching service) cannot hold requests, so the
      // shed loops below never dereference its -1 service index.
      const auto s = static_cast<std::size_t>(unit_service[ui]);
      const std::uint64_t unit_sub = (static_cast<std::uint64_t>(unit_global[ui]) + 1)
                                     << kSubEmissionBits;
      std::uint64_t emission = 0;
      for (const Request* request = state.queue.begin(); request != state.queue.end();
           ++request) {
        PARVA_CHECK(emission >> kSubEmissionBits == 0, "shed emission overflow");
        shed_one(s, request->arrival_ms, now, seq, unit_sub | emission++);
      }
      state.queue.clear();
      for (const std::uint32_t slot : state.in_flight_slots) {
        const Batch& batch = batches[slot].payload;
        for (std::size_t i = 0; i < batch.requests.size(); ++i) {
          // LLM batches mid-decode only shed the requests still generating
          // (finished ones already completed and were accounted).
          if (!batch.remaining.empty() && batch.remaining[i] <= 0) continue;
          PARVA_CHECK(emission >> kSubEmissionBits == 0, "shed emission overflow");
          shed_one(s, batch.requests[i].arrival_ms, now, seq, unit_sub | emission++);
        }
        batches.release(slot);
      }
      state.in_flight_slots.clear();
      state.in_flight_requests = 0;
      state.idle_processes = 0;
      // The device reset wipes the unit's KV ledger with it.
      state.kv_used = 0.0;
      state.resident.clear();
    }
    busy_ms += ms_since(t0);
  }
};

}  // namespace

double SimulationResult::overall_compliance() const {
  std::size_t total = 0;
  std::size_t violated = 0;
  for (const ServiceOutcome& outcome : services) {
    total += outcome.batches;
    violated += outcome.violated_batches;
  }
  return total == 0 ? 1.0
                    : 1.0 - static_cast<double>(violated) / static_cast<double>(total);
}

double SimulationResult::worst_compliance() const {
  double worst = 1.0;
  for (const ServiceOutcome& outcome : services) worst = std::min(worst, outcome.compliance());
  return worst;
}

SimulationResult ClusterSimulation::run(const SimulationOptions& options) const {
  PARVA_REQUIRE(options.duration_ms > 0.0, "duration must be positive");
  PARVA_REQUIRE(options.shards >= 1, "shard count must be >= 1");
  const double horizon_ms = options.warmup_ms + options.duration_ms;
  const std::size_t service_count = services_.size();
  const std::size_t unit_count = deployment_->units.size();
  const auto shard_count = static_cast<std::size_t>(options.shards);

  RunConfig cfg;
  cfg.warmup_ms = options.warmup_ms;
  cfg.horizon_ms = horizon_ms;
  cfg.timeline_bucket_ms = options.timeline_bucket_ms;
  cfg.arrivals = options.arrivals;
  PARVA_REQUIRE(options.llm.decode_chunk_tokens > 0, "decode chunk must be positive");
  cfg.llm = options.llm;
  if (options.arrivals == ArrivalProcess::kBursty) {
    PARVA_REQUIRE(options.burst_factor > 1.0, "burst factor must exceed 1");
    PARVA_REQUIRE(options.burst_prob > 0.0 && options.burst_prob < 1.0,
                  "burst probability must be in (0, 1)");
    cfg.burst_prob = options.burst_prob;
    cfg.burst_factor = options.burst_factor;
    // Slow-phase rate multiplier chosen so the two-phase mixture keeps the
    // offered rate: E[gap] = p/(r*f) + (1-p)/(r*slow) = 1/r.
    cfg.burst_slow =
        (1.0 - options.burst_prob) / (1.0 - options.burst_prob / options.burst_factor);
  }
  if (options.timeline_bucket_ms > 0.0) {
    cfg.timeline_buckets = static_cast<std::size_t>(
        std::ceil(options.duration_ms / options.timeline_bucket_ms));
  }

  // Fault schedule with canonical keys: a failure's key is its position in
  // the *sorted plan* (not the horizon-filtered list), so the key of a
  // given failure never depends on the run length.
  struct FaultDelivery {
    double at_ms = 0.0;
    std::uint64_t seq = 0;
    int gpu = -1;
  };
  std::vector<FaultDelivery> faults;
  if (options.fault_plan != nullptr) {
    const auto sorted = options.fault_plan->sorted_gpu_failures();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i].at_ms > horizon_ms) continue;
      faults.push_back({sorted[i].at_ms, canonical_seq(kFaultStreamId, i),
                        static_cast<int>(sorted[i].gpu_index)});
    }
  }
  if (!faults.empty()) {
    cfg.first_failure_ms = faults.front().at_ms;
    cfg.first_failure_seq = faults.front().seq;
  }

  double recovered_at = options.recovered_at_ms;
  if (recovered_at <= 0.0) {
    for (const UnitActivation& activation : options.activations) {
      recovered_at = std::max(recovered_at, activation.at_ms);
    }
  }
  cfg.recovered_at_ms = recovered_at;

  // Telemetry handles, registered up front (a scrape sees every series even
  // for a run with no traffic) and flushed once, in canonical per-service
  // order, after the last window — which makes the scrape a pure function
  // of the merged result, byte-identical across shard counts.
  telemetry::Telemetry* tel = options.telemetry;
  cfg.buffer_records = tel != nullptr;
  cfg.record_batch_events = tel != nullptr && tel->options().request_events;
  std::vector<telemetry::Counter> tel_svc_requests(service_count);
  std::vector<telemetry::Counter> tel_svc_shed(service_count);
  telemetry::Counter tel_batches;
  telemetry::Counter tel_violated_batches;
  telemetry::Counter tel_events_processed;
  telemetry::HistogramMetric tel_latency;
  telemetry::Counter tel_llm_rejected;
  telemetry::Counter tel_llm_evicted;
  telemetry::Counter tel_llm_tokens;
  telemetry::HistogramMetric tel_prefill_latency;
  telemetry::HistogramMetric tel_decode_latency;
  telemetry::Gauge tel_kv_peak;
  if (tel != nullptr) {
    telemetry::MetricsRegistry& m = tel->metrics();
    tel_batches = m.counter("parva_sim_batches_total", "Batches served after warm-up");
    tel_violated_batches =
        m.counter("parva_sim_violated_batches_total", "Served batches that missed their SLO");
    tel_events_processed =
        m.counter("parva_sim_events_total", "Discrete events the engine processed");
    tel_latency = m.histogram("parva_sim_request_latency_ms",
                              telemetry::MetricsRegistry::default_latency_buckets_ms(),
                              "End-to-end request latency");
    tel_llm_rejected = m.counter("parva_sim_llm_rejected_total",
                                 "LLM requests refused admission by the KV ledger");
    tel_llm_evicted =
        m.counter("parva_sim_llm_evicted_total", "LLM requests evicted mid-decode");
    tel_llm_tokens = m.counter("parva_sim_llm_generated_tokens_total",
                               "Decode tokens emitted by completed requests");
    tel_prefill_latency = m.histogram("parva_sim_prefill_latency_ms",
                                      telemetry::MetricsRegistry::default_latency_buckets_ms(),
                                      "Arrival to first token (prefill done)");
    tel_decode_latency = m.histogram("parva_sim_decode_latency_ms",
                                     telemetry::MetricsRegistry::default_latency_buckets_ms(),
                                     "Prefill completion to last token");
    tel_kv_peak = m.gauge("parva_sim_kv_peak_ratio",
                          "Highest per-unit peak KV occupancy / capacity this run");
    for (std::size_t s = 0; s < service_count; ++s) {
      const std::string labels = "service=\"" + std::to_string(services_[s].id) + "\"";
      tel_svc_requests[s] = m.counter("parva_sim_requests_total",
                                      "Requests completed after warm-up", labels);
      tel_svc_shed[s] =
          m.counter("parva_sim_shed_requests_total", "Requests dropped by failures", labels);
    }
  }

  // Deterministic service partition; every unit follows its service.
  std::vector<double> rates(service_count, 0.0);
  for (std::size_t s = 0; s < service_count; ++s) rates[s] = services_[s].request_rate;
  const std::vector<int> assignment = partition_services(rates, options.shards);

  // service_id -> global service index via a sorted lookup table (stable
  // on ties: the FIRST service with a given id wins, as the linear scan
  // this replaced did). O(U log S) where the scan was O(U * S) — at a
  // 10k-GPU fleet that loop alone was ~10^8 comparisons of setup.
  std::vector<std::pair<int, std::size_t>> svc_by_id(service_count);
  for (std::size_t s = 0; s < service_count; ++s) svc_by_id[s] = {services_[s].id, s};
  std::stable_sort(svc_by_id.begin(), svc_by_id.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<int> unit_svc_global(unit_count, -1);
  for (std::size_t u = 0; u < unit_count; ++u) {
    const int id = deployment_->units[u].service_id;
    const auto it = std::lower_bound(
        svc_by_id.begin(), svc_by_id.end(), id,
        [](const std::pair<int, std::size_t>& entry, int key) { return entry.first < key; });
    if (it != svc_by_id.end() && it->first == id) {
      unit_svc_global[u] = static_cast<int>(it->second);
    }
  }

  std::vector<Shard> shards(shard_count);
  std::vector<int> svc_shard_local(service_count, -1);
  for (std::size_t s = 0; s < service_count; ++s) {
    Shard& shard = shards[static_cast<std::size_t>(assignment[s])];
    svc_shard_local[s] = static_cast<int>(shard.svc_global.size());
    shard.svc_global.push_back(s);
    shard.svc_id.push_back(services_[s].id);
    shard.svc_slo_ms.push_back(services_[s].slo_latency_ms);
    shard.svc_rate.push_back(services_[s].request_rate);
    shard.paced_gap_ms.push_back(
        services_[s].request_rate > 0.0 ? 1.0 / (services_[s].request_rate / 1000.0) : 0.0);
    // Per-service stream as a pure function of (seed, service index): the
    // same stream no matter which shard hosts the service.
    shard.arrival_rng.push_back(Rng::stream(options.seed, RngStreamTag::kArrival, s));
    // LLM per-service state. The token and dispatch streams exist for every
    // service but are only ever drawn by LLM ones, so fixed-latency runs
    // stay byte-identical to the pre-LLM engine.
    const core::LlmWorkload* llm =
        services_[s].llm.has_value() ? &*services_[s].llm : nullptr;
    shard.svc_llm.push_back(llm);
    shard.token_rng.push_back(Rng::stream(options.seed, RngStreamTag::kToken, s));
    shard.dispatch_rng.push_back(Rng::stream(options.seed, RngStreamTag::kDispatch, s));
    shard.rr_cursor.push_back(0);
  }

  // Per-unit runtime state (orphan units — no matching service — ride on
  // shard 0; they serve nothing and only contribute a zero activity). The
  // per-fill-level latency scale and SM-work tables hoist the work-model
  // evaluations out of the batch hot path.
  std::vector<std::size_t> unit_shard_local(unit_count, 0);
  for (std::size_t u = 0; u < unit_count; ++u) {
    const int sg = unit_svc_global[u];
    Shard& shard = shards[sg >= 0 ? static_cast<std::size_t>(assignment[sg]) : 0];
    unit_shard_local[u] = shard.units.size();
    shard.unit_global.push_back(u);
    shard.unit_service.push_back(sg >= 0 ? svc_shard_local[sg] : -1);
    shard.jitter_rng.push_back(Rng::stream(options.seed, RngStreamTag::kJitter, u));
    shard.completion_seq.emplace_back(completion_stream_id(service_count, u));
    shard.units.emplace_back();
    UnitState& state = shard.units.back();
    state.unit = &deployment_->units[u];
    state.traits = perf_->catalog().find(deployment_->units[u].model);
    state.idle_processes = std::max(1, deployment_->units[u].procs);
    state.capacity = std::max(1e-9, deployment_->units[u].actual_throughput);
    const int batch = state.unit->batch;
    state.fill_scale.assign(static_cast<std::size_t>(batch) + 1, 1.0);
    state.sm_work.assign(static_cast<std::size_t>(batch) + 1, 0.0);
    if (state.traits != nullptr) {
      const double full =
          perfmodel::AnalyticalPerfModel::batch_work_ms(*state.traits, batch);
      for (int take = 1; take <= batch; ++take) {
        const double partial =
            perfmodel::AnalyticalPerfModel::batch_work_ms(*state.traits, take);
        if (take < batch) state.fill_scale[static_cast<std::size_t>(take)] = partial / full;
        state.sm_work[static_cast<std::size_t>(take)] = partial * gpu::kSmsPerGpc;
      }
    }
    // Generative-LLM unit state (DESIGN.md §4.7). Token laws and the KV
    // ledger key off the unit's model in the LLM catalog (unknown models
    // get generic defaults so synthetic tests can attach workloads to any
    // catalog row).
    if (sg >= 0 && services_[static_cast<std::size_t>(sg)].llm.has_value()) {
      const core::LlmWorkload& wl = *services_[static_cast<std::size_t>(sg)].llm;
      state.is_llm = true;
      state.llm_traits = perfmodel::LlmCatalog::builtin().find(state.unit->model);
      if (state.llm_traits == nullptr) state.llm_traits = &perfmodel::default_llm_traits();
      state.prefill_share =
          wl.gen_tokens_mean > 0.0 ? perfmodel::prefill_cost_share(*state.llm_traits) : 1.0;
      state.expected_prompt = wl.prompt_tokens_mean;
      state.kv_per_token = wl.kv_bytes_per_token;
      if (state.kv_per_token > 0.0) {
        // Ledger capacity: the MIG slice's memory (fractional MPS grants
        // pro-rate the full device) minus one weight replica per process.
        const int g = static_cast<int>(std::lround(state.unit->gpc_grant));
        const double mem_gib =
            gpu::is_valid_instance_size(g) &&
                    std::abs(state.unit->gpc_grant - static_cast<double>(g)) < 1e-9
                ? gpu::instance_memory_gib(g)
                : gpu::kGpuMemoryGiB * state.unit->gpc_grant /
                      static_cast<double>(gpu::kGpcSlots);
        const double weights_gib =
            state.llm_traits->weight_gib * static_cast<double>(std::max(1, state.unit->procs));
        state.kv_capacity = std::max(0.0, mem_gib - weights_gib) * 1024.0 * 1024.0 * 1024.0;
      }
      // Per-live-count decode step table: evaluated once here, read every
      // Decode event. Index 0 is never scheduled (live == 0 finalizes).
      state.decode_step_ms.assign(static_cast<std::size_t>(batch) + 1, 0.0);
      for (int live = 1; live <= batch; ++live) {
        state.decode_step_ms[static_cast<std::size_t>(live)] = perfmodel::decode_step_ms(
            *state.llm_traits, state.unit->gpc_grant, std::max(1, state.unit->procs), live,
            cfg.llm.decode_chunk_tokens);
      }
    }
  }

  for (Shard& shard : shards) {
    shard.cfg = &cfg;
    const std::size_t local_services = shard.svc_global.size();
    // CSR of each local service's units by counting sort on unit_service:
    // one pass to size the rows, one to fill them in ascending local-unit
    // order (the order the nested scan this replaced produced).
    shard.svc_unit_off.assign(local_services + 2, 0);
    for (std::size_t lu = 0; lu < shard.units.size(); ++lu) {
      const int ls = shard.unit_service[lu];
      if (ls >= 0) ++shard.svc_unit_off[static_cast<std::size_t>(ls) + 2];
    }
    for (std::size_t ls = 2; ls < shard.svc_unit_off.size(); ++ls) {
      shard.svc_unit_off[ls] += shard.svc_unit_off[ls - 1];
    }
    shard.svc_unit_flat.resize(shard.svc_unit_off[local_services + 1]);
    for (std::size_t lu = 0; lu < shard.units.size(); ++lu) {
      const int ls = shard.unit_service[lu];
      if (ls < 0) continue;  // orphan unit: serves no local service
      shard.svc_unit_flat[shard.svc_unit_off[static_cast<std::size_t>(ls) + 1]++] =
          static_cast<std::uint32_t>(lu);
    }
    shard.svc_unit_off.pop_back();

    shard.outcomes.resize(local_services);
    for (std::size_t ls = 0; ls < local_services; ++ls) {
      shard.outcomes[ls].service_id = shard.svc_id[ls];
      shard.outcomes[ls].offered_rate = shard.svc_rate[ls];
    }
    if (cfg.timeline_buckets > 0) {
      shard.timeline.resize(cfg.timeline_buckets);
      for (std::size_t b = 0; b < cfg.timeline_buckets; ++b) {
        shard.timeline[b].t_ms = static_cast<double>(b) * cfg.timeline_bucket_ms;
      }
    }

    // Seed the first arrival of every service (random phase; the phase
    // draw precedes any gap draw on the service's stream).
    shard.arrivals = ArrivalStreams(shard.svc_global, options.arrival_scheduler);
    for (std::size_t ls = 0; ls < local_services; ++ls) {
      if (shard.svc_rate[ls] <= 0.0 ||
          shard.svc_unit_off[ls + 1] == shard.svc_unit_off[ls]) {
        continue;
      }
      const double phase = shard.arrival_rng[ls].next_double();
      shard.arrivals.arm(ls, phase * shard.next_gap_ms(ls));
    }
    shard.arrival_svc = shard.arrivals.earliest();
  }

  // Repair activations: dormant at t=0, woken by an intra-shard heap event
  // keyed by the activation's position in options.activations.
  for (std::size_t i = 0; i < options.activations.size(); ++i) {
    const UnitActivation& activation = options.activations[i];
    PARVA_REQUIRE(activation.unit_index < unit_count, "activation index out of range");
    const int sg = unit_svc_global[activation.unit_index];
    Shard& shard = shards[sg >= 0 ? static_cast<std::size_t>(assignment[sg]) : 0];
    const std::size_t lu = unit_shard_local[activation.unit_index];
    shard.units[lu].up = false;  // dormant until its time comes
    if (activation.at_ms <= horizon_ms) {
      SimEvent event;
      event.time_ms = activation.at_ms;
      event.seq = canonical_seq(kActivationStreamId, i);
      event.kind = EventKind::kUnitActivate;
      event.unit_index = static_cast<int>(lu);
      shard.events.push(event);
    }
  }

  // ----- Coordinator: conservative windows with barrier fault delivery.
  //
  // The only cross-shard coupling is a GPU failure (one device can host
  // units of services on different shards), and the fault schedule is
  // static — so the next undelivered failure's canonical key is an *exact*
  // conservative bound: every shard can safely process all events that
  // precede it. shard_window_ms > 0 adds forced lockstep barriers on top
  // (the general conservative protocol), which must not — and, by the
  // differential tests, does not — change any output.
  ThreadPool* pool = options.shard_pool;
  auto run_window = [&](double bound_ms, std::uint64_t bound_seq) {
    if (pool != nullptr && shard_count > 1) {
      pool->parallel_for(shard_count,
                         [&](std::size_t k) { shards[k].advance(bound_ms, bound_seq); });
    } else {
      for (Shard& shard : shards) shard.advance(bound_ms, bound_seq);
    }
  };
  auto all_idle = [&]() {
    for (const Shard& shard : shards) {
      if (!shard.idle()) return false;
    }
    return true;
  };

  SimulationResult result;
  std::vector<BufferedRecord> coordinator_records;
  std::size_t fault_events = 0;
  std::size_t next_fault = 0;
  double window_end = options.shard_window_ms;
  while (true) {
    const bool have_fault = next_fault < faults.size();
    double bound_ms = have_fault ? faults[next_fault].at_ms : kNever;
    std::uint64_t bound_seq = have_fault ? faults[next_fault].seq : 0;
    bool forced = false;
    if (options.shard_window_ms > 0.0 && window_end < bound_ms && !all_idle()) {
      bound_ms = window_end;
      bound_seq = 0;
      forced = true;
    }
    run_window(bound_ms, bound_seq);
    if (forced) {
      // Monotonic window stepping by a constant, not a reduction.
      // parva-audit: allow(R14): order is the window order by construction.
      window_end += options.shard_window_ms;
      continue;
    }
    if (!have_fault) break;  // drained to the horizon with nothing pending
    const FaultDelivery& fault = faults[next_fault++];
    ++fault_events;  // the coordinator processes each failure exactly once
    if (result.failure_at_ms < 0.0) result.failure_at_ms = fault.at_ms;
    if (cfg.buffer_records) {
      coordinator_records.push_back({fault.at_ms, fault.seq, 0,
                                     telemetry::EventKind::kGpuFailure, fault.gpu, -1, 0.0});
    }
    for (Shard& shard : shards) shard.apply_failure(fault.gpu, fault.at_ms, fault.seq);
  }

  // ----- Merge: every aggregate is either per-service / per-unit (owned by
  // exactly one shard, copied into its global slot) or an order-free sum.
  std::size_t events_processed = fault_events;
  result.shard_events.resize(shard_count);
  result.shard_busy_ms.resize(shard_count);
  result.services.resize(service_count);
  result.unit_activity.assign(unit_count, 0.0);
  result.unit_kv_peak.assign(unit_count, 0.0);
  std::vector<TimelineBucket> timeline(cfg.timeline_buckets);
  for (std::size_t b = 0; b < cfg.timeline_buckets; ++b) {
    timeline[b].t_ms = static_cast<double>(b) * cfg.timeline_bucket_ms;
  }
  auto add_phase = [](PhaseStats& into, const PhaseStats& from) {
    into.batches += from.batches;
    into.violated_batches += from.violated_batches;
    into.requests += from.requests;
    into.violated_requests += from.violated_requests;
    into.shed_requests += from.shed_requests;
  };
  for (std::size_t k = 0; k < shard_count; ++k) {
    Shard& shard = shards[k];
    events_processed += shard.events_processed;
    result.shard_events[k] = shard.events_processed;
    result.shard_busy_ms[k] = shard.busy_ms;
    for (std::size_t ls = 0; ls < shard.svc_global.size(); ++ls) {
      ServiceOutcome& outcome = shard.outcomes[ls];
      outcome.measured_rate =
          static_cast<double>(outcome.requests) / (options.duration_ms / 1000.0);
      result.requests_shed += outcome.shed_requests;
      result.requests_rejected += outcome.rejected_requests;
      result.requests_evicted += outcome.evicted_requests;
      result.generated_tokens += outcome.generated_tokens;
      result.services[shard.svc_global[ls]] = std::move(outcome);
    }
    for (std::size_t lu = 0; lu < shard.units.size(); ++lu) {
      const UnitState& state = shard.units[lu];
      const double granted_sm_ms =
          state.unit->gpc_grant * gpu::kSmsPerGpc * options.duration_ms;
      result.unit_activity[shard.unit_global[lu]] =
          granted_sm_ms <= 0.0 ? 0.0 : state.busy_sm_ms / granted_sm_ms;
      if (state.kv_capacity > 0.0) {
        result.unit_kv_peak[shard.unit_global[lu]] = state.kv_peak / state.kv_capacity;
      }
    }
    add_phase(result.pre_failure, shard.pre_failure);
    add_phase(result.degraded, shard.degraded);
    add_phase(result.post_recovery, shard.post_recovery);
    for (std::size_t b = 0; b < cfg.timeline_buckets; ++b) {
      timeline[b].batches += shard.timeline[b].batches;
      timeline[b].violated_batches += shard.timeline[b].violated_batches;
      timeline[b].shed_requests += shard.timeline[b].shed_requests;
    }
  }
  result.events_processed = events_processed;
  if (result.failure_at_ms >= 0.0 && recovered_at > 0.0) {
    result.recovered_at_ms = recovered_at;
  }
  result.timeline = std::move(timeline);
  result.internal_slack =
      core::internal_slack_from_activity(*deployment_, result.unit_activity);

  // ----- Telemetry flush, on the coordinator thread, in canonical order.
  if (tel != nullptr) {
    tel_events_processed.inc(static_cast<double>(events_processed));
    std::size_t total_batches = 0;
    std::size_t total_violated = 0;
    for (std::size_t s = 0; s < service_count; ++s) {
      const ServiceOutcome& outcome = result.services[s];
      total_batches += outcome.batches;
      total_violated += outcome.violated_batches;
      tel_svc_requests[s].inc(static_cast<double>(outcome.requests));
      tel_svc_shed[s].inc(static_cast<double>(outcome.shed_requests));
      // Histogram observations replay per service in completion order: a
      // canonical order, so the (order-sensitive) float sum is identical
      // for every shard count.
      for (const double latency : outcome.request_latency_ms.values()) {
        tel_latency.observe(latency);
      }
      for (const double latency : outcome.prefill_latency_ms.values()) {
        tel_prefill_latency.observe(latency);
      }
      for (const double latency : outcome.decode_latency_ms.values()) {
        tel_decode_latency.observe(latency);
      }
    }
    tel_batches.inc(static_cast<double>(total_batches));
    tel_violated_batches.inc(static_cast<double>(total_violated));
    tel_llm_rejected.inc(static_cast<double>(result.requests_rejected));
    tel_llm_evicted.inc(static_cast<double>(result.requests_evicted));
    tel_llm_tokens.inc(static_cast<double>(result.generated_tokens));
    double kv_peak = 0.0;
    for (const double ratio : result.unit_kv_peak) kv_peak = std::max(kv_peak, ratio);
    tel_kv_peak.set(kv_peak);

    std::vector<std::vector<BufferedRecord>> buffers;
    buffers.reserve(shard_count + 1);
    for (Shard& shard : shards) buffers.push_back(std::move(shard.records));
    buffers.push_back(std::move(coordinator_records));
    for (const BufferedRecord& record : merge_records(std::move(buffers))) {
      tel->events().record(record.kind, record.t_ms, record.gpu, record.service_id,
                           record.value);
    }
  }
  return result;
}

}  // namespace parva::serving
