// Hardware-path profiler: the methodology a real deployment uses.
//
// Where Profiler (profiler.hpp) queries the performance model analytically,
// MeasuredProfiler walks the same grid the way the paper's Profiler does on
// hardware: for every (instance size, batch, process count) point it
//   1. creates a MIG instance through the NVML-shaped control plane,
//   2. starts MPS and launches the processes (out-of-memory surfaces as a
//      failed launch, exactly like a real CUDA OOM — not as a model check),
//   3. runs a closed-loop measurement: each process executes batches
//      back-to-back; per-batch latencies carry the simulator's noise and
//      are averaged over `measurement_batches`,
//   4. destroys the instance.
//
// Because measurements are noisy, the recorded throughput/latency differ
// slightly from the analytical grid — the cross-validation test bounds the
// disagreement, and schedulers built on measured profiles behave like ones
// built on analytical profiles (profiler/measured_profiler_test.cpp).
#pragma once

#include "common/rng.hpp"
#include "gpu/nvml_sim.hpp"
#include "perfmodel/analytical_model.hpp"
#include "profiler/profile_types.hpp"
#include "profiler/profiler.hpp"

namespace parva::profiler {

struct MeasuredProfilerOptions {
  ProfilerOptions grid;            ///< the sweep (defaults to the paper's 5x8x3)
  int measurement_batches = 32;    ///< batches averaged per grid point
  int warmup_batches = 4;          ///< discarded start-up batches
  unsigned profiling_device = 0;   ///< which GPU hosts the profiling runs
  std::uint64_t seed = 1234;
};

class MeasuredProfiler {
 public:
  MeasuredProfiler(gpu::NvmlSim& nvml, const perfmodel::AnalyticalPerfModel& perf,
                   MeasuredProfilerOptions options = {})
      : nvml_(&nvml), perf_(&perf), options_(options) {}

  /// Profiles one model on the (simulated) hardware. The profiling device
  /// must be idle; it is left idle afterwards.
  [[nodiscard]] Result<ProfileTable> profile(const std::string& model_name);

  /// Profiles several models sequentially on the profiling device.
  [[nodiscard]] Result<ProfileSet> profile_all(const std::vector<std::string>& model_names);

 private:
  /// Best-effort teardown of a half-provisioned profiling instance on an
  /// error path: failures are logged, not propagated (the original error is
  /// the one worth reporting).
  void rollback_instance(gpu::GlobalInstanceId instance);

  gpu::NvmlSim* nvml_;
  const perfmodel::AnalyticalPerfModel* perf_;
  MeasuredProfilerOptions options_;
};

}  // namespace parva::profiler
