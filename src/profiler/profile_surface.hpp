// Indexed profile surfaces: the planning fast path.
//
// A ProfileTable is a flat list of (instance size, batch, process count)
// operating points; every scheduler query against it is a full scan. A
// ProfileSurface indexes one table once so the hot planning queries become
// cheap lookups:
//
//   * a dense (g, b, p) -> point array gives O(1) exact-coordinate lookup —
//     this is also the memoized form of AnalyticalPerfModel::evaluate over
//     the profiling grid (the surface stores the evaluated PerfPoint of
//     every feasible grid coordinate);
//   * per (instance size, process cap), the feasible points are sorted by
//     latency with a prefix-argmax of throughput, so "best triplet under a
//     latency bound" (Optimal Triplet Decision) is one binary search
//     instead of a table scan.
//
// Query results are pointer-identical in value to what the reference scans
// over the backing table produce — ties between equal-throughput points
// resolve to the earliest table entry, exactly as a first-wins linear scan
// does — so the fast path is provably behavior-preserving (see
// tests/profiler/profile_surface_test.cpp for the differential suite).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "profiler/profile_types.hpp"

namespace parva::profiler {

class ProfileSurface {
 public:
  ProfileSurface() = default;
  /// Indexes `table`. The surface copies the points, so the table may go
  /// away afterwards.
  explicit ProfileSurface(const ProfileTable& table);

  const std::string& model() const { return model_; }
  std::size_t size() const { return points_.size(); }
  const std::vector<ProfilePoint>& points() const { return points_; }

  /// O(1) exact-coordinate lookup (nullptr off the grid). Mirrors
  /// ProfileTable::find, including returning OOM points.
  const ProfilePoint* find(int gpcs, int batch, int procs) const;

  /// Maximum-throughput feasible point for `gpcs` with `procs <= procs_cap`
  /// and `latency_ms < latency_bound_ms` (strict, as Optimal Triplet
  /// Decision requires). nullptr when nothing qualifies. O(log points).
  const ProfilePoint* best_below(int gpcs, int procs_cap, double latency_bound_ms) const;

  /// Same with an inclusive latency cap (`latency_ms <= cap`), mirroring
  /// ProfileTable::best_for_size.
  const ProfilePoint* best_at_most(int gpcs, int procs_cap, double latency_cap_ms) const;

  /// The distinct instance sizes present on the surface, ascending.
  const std::vector<int>& instance_sizes() const { return sizes_; }
  /// The distinct process counts present, ascending.
  const std::vector<int>& process_counts() const { return procs_; }

 private:
  struct Shelf {
    /// Candidate point indices sorted by (latency, table order); only
    /// feasible (non-OOM) points appear.
    std::vector<std::uint32_t> by_latency;
    /// Latencies of by_latency, for branch-free binary search.
    std::vector<double> latencies;
    /// prefix_best[k]: index of the best point among by_latency[0..k] by
    /// (throughput desc, table order asc) — the same winner a first-wins
    /// max-throughput scan over that subset picks.
    std::vector<std::uint32_t> prefix_best;
  };

  const Shelf* shelf_for(int gpcs, int procs_cap) const;
  const ProfilePoint* best_with_end(const Shelf* shelf, std::size_t end) const;

  std::string model_;
  std::vector<ProfilePoint> points_;
  std::vector<int> sizes_;    ///< distinct gpcs, ascending
  std::vector<int> batches_;  ///< distinct batch sizes, ascending
  std::vector<int> procs_;    ///< distinct process counts, ascending
  /// Dense [size][batch][proc] -> point index (-1 when absent).
  std::vector<std::int32_t> dense_;
  /// shelves_[size_index * procs_.size() + cap_index].
  std::vector<Shelf> shelves_;
};

/// Surfaces for a set of models, with O(1) model lookup.
class ProfileSurfaceSet {
 public:
  ProfileSurfaceSet() = default;
  /// Indexes every table of `profiles`.
  explicit ProfileSurfaceSet(const ProfileSet& profiles);

  void add(ProfileSurface surface);
  const ProfileSurface* find(const std::string& model) const;
  std::size_t size() const { return surfaces_.size(); }
  const std::vector<ProfileSurface>& surfaces() const { return surfaces_; }

 private:
  std::vector<ProfileSurface> surfaces_;
  std::unordered_map<std::string, std::size_t> by_model_;
};

}  // namespace parva::profiler
