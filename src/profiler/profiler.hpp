// The Profiler (paper Section III-C): records throughput and latency of
// each workload across MIG instance sizes, batch sizes, and MPS process
// counts. Profiling happens once per registered model; ParvaGPU never needs
// cross-model pair profiling (MIG isolates workloads), which is its
// overhead advantage over gpulet.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "perfmodel/analytical_model.hpp"
#include "profiler/profile_types.hpp"

namespace parva::profiler {

struct ProfilerOptions {
  /// Batch grid: the paper's suggestion of eight power-of-two sizes 1..128.
  std::vector<int> batch_sizes = {1, 2, 4, 8, 16, 32, 64, 128};
  /// MPS process counts to explore (paper limits to 3 for OOM headroom).
  int max_processes = 3;
  /// Instance sizes; defaults to the five legal MIG sizes.
  std::vector<int> instance_sizes = {1, 2, 3, 4, 7};
};

class Profiler {
 public:
  Profiler(const perfmodel::AnalyticalPerfModel& model, ProfilerOptions options = {})
      : model_(&model), options_(std::move(options)) {}

  const ProfilerOptions& options() const { return options_; }

  /// Profiles one model over the full grid. OOM points are recorded (not
  /// skipped) so downstream consumers can reproduce the holes in Figure 3.
  ProfileTable profile(const perfmodel::WorkloadTraits& traits) const;
  ProfileTable profile(const std::string& model_name) const;

  /// Profiles several models, one per pool task (the profiling runs are
  /// independent; on real hardware they would occupy separate instances).
  ProfileSet profile_all(const std::vector<std::string>& model_names, ThreadPool& pool) const;

  /// Serial variant.
  ProfileSet profile_all(const std::vector<std::string>& model_names) const;

  /// Grid size |I| * |B| * P; used by the overhead accounting tests.
  std::size_t grid_points() const {
    return options_.instance_sizes.size() * options_.batch_sizes.size() *
           static_cast<std::size_t>(options_.max_processes);
  }

 private:
  const perfmodel::AnalyticalPerfModel* model_;
  ProfilerOptions options_;
};

}  // namespace parva::profiler
