#include "profiler/profiler.hpp"

namespace parva::profiler {

ProfileTable Profiler::profile(const perfmodel::WorkloadTraits& traits) const {
  ProfileTable table(traits.name);
  for (int gpcs : options_.instance_sizes) {
    for (int batch : options_.batch_sizes) {
      for (int procs = 1; procs <= options_.max_processes; ++procs) {
        ProfilePoint point;
        point.model = traits.name;
        point.gpcs = gpcs;
        point.batch = batch;
        point.procs = procs;
        auto result = model_->evaluate_mig(traits, gpcs, batch, procs);
        if (result.ok()) {
          const perfmodel::PerfPoint& perf = result.value();
          point.throughput = perf.throughput;
          point.latency_ms = perf.latency_ms;
          point.sm_occupancy = perf.sm_occupancy;
          point.memory_gib = perf.memory_gib;
        } else {
          point.oom = true;
        }
        table.add(std::move(point));
      }
    }
  }
  return table;
}

ProfileTable Profiler::profile(const std::string& model_name) const {
  return profile(model_->catalog().at(model_name));
}

ProfileSet Profiler::profile_all(const std::vector<std::string>& model_names,
                                 ThreadPool& pool) const {
  std::vector<ProfileTable> tables(model_names.size());
  pool.parallel_for(model_names.size(),
                    [&](std::size_t i) { tables[i] = profile(model_names[i]); });
  ProfileSet set;
  for (auto& table : tables) set.add(std::move(table));
  return set;
}

ProfileSet Profiler::profile_all(const std::vector<std::string>& model_names) const {
  ProfileSet set;
  for (const auto& name : model_names) set.add(profile(name));
  return set;
}

}  // namespace parva::profiler
