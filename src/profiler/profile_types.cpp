#include "profiler/profile_types.hpp"

namespace parva::profiler {

std::optional<ProfilePoint> ProfileTable::best_for_size(int gpcs, double latency_cap_ms) const {
  std::optional<ProfilePoint> best;
  for (const ProfilePoint& point : points_) {
    if (point.oom || point.gpcs != gpcs) continue;
    if (point.latency_ms > latency_cap_ms) continue;
    if (!best.has_value() || point.throughput > best->throughput) best = point;
  }
  return best;
}

std::optional<ProfilePoint> ProfileTable::best_overall(double latency_cap_ms) const {
  std::optional<ProfilePoint> best;
  for (const ProfilePoint& point : points_) {
    if (point.oom || point.latency_ms > latency_cap_ms) continue;
    if (!best.has_value() || point.throughput > best->throughput) best = point;
  }
  return best;
}

const ProfilePoint* ProfileTable::find(int gpcs, int batch, int procs) const {
  for (const ProfilePoint& point : points_) {
    if (point.gpcs == gpcs && point.batch == batch && point.procs == procs) return &point;
  }
  return nullptr;
}

void ProfileSet::add(ProfileTable table) { tables_.push_back(std::move(table)); }

const ProfileTable* ProfileSet::find(const std::string& model) const {
  for (const auto& table : tables_) {
    if (table.model() == model) return &table;
  }
  return nullptr;
}

}  // namespace parva::profiler
