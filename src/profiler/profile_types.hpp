// Profile data types: the (instance size, batch, process-count) operating
// grid recorded per model, consumed by every scheduler.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace parva::profiler {

/// One profiled operating point for a model.
struct ProfilePoint {
  std::string model;
  int gpcs = 0;
  int batch = 0;
  int procs = 0;
  bool oom = false;           ///< point infeasible (memory grant exceeded)
  double throughput = 0.0;    ///< requests/s (0 when oom)
  double latency_ms = 0.0;    ///< per-batch latency (0 when oom)
  double sm_occupancy = 0.0;  ///< steady-state SM busy fraction at this point
  double memory_gib = 0.0;    ///< device memory used by all processes
};

/// All profiled points for one model, with common queries.
class ProfileTable {
 public:
  ProfileTable() = default;
  explicit ProfileTable(std::string model) : model_(std::move(model)) {}

  const std::string& model() const { return model_; }
  void add(ProfilePoint point) { points_.push_back(std::move(point)); }
  const std::vector<ProfilePoint>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }

  /// Highest-throughput feasible point for `gpcs` with latency <= cap;
  /// nullopt when no point qualifies.
  std::optional<ProfilePoint> best_for_size(int gpcs, double latency_cap_ms) const;

  /// Highest-throughput feasible point overall with latency <= cap.
  std::optional<ProfilePoint> best_overall(double latency_cap_ms) const;

  /// Feasible point lookup (exact grid coordinates).
  const ProfilePoint* find(int gpcs, int batch, int procs) const;

 private:
  std::string model_;
  std::vector<ProfilePoint> points_;
};

/// Profiles for a set of models.
class ProfileSet {
 public:
  void add(ProfileTable table);
  const ProfileTable* find(const std::string& model) const;
  const std::vector<ProfileTable>& tables() const { return tables_; }
  std::size_t size() const { return tables_.size(); }

 private:
  std::vector<ProfileTable> tables_;
};

}  // namespace parva::profiler
