#include "profiler/profile_surface.hpp"

#include <algorithm>

namespace parva::profiler {
namespace {

/// Index of `value` in the sorted distinct-value list, or -1.
int axis_index(const std::vector<int>& axis, int value) {
  const auto it = std::lower_bound(axis.begin(), axis.end(), value);
  if (it == axis.end() || *it != value) return -1;
  return static_cast<int>(it - axis.begin());
}

std::vector<int> distinct_sorted(const std::vector<ProfilePoint>& points,
                                 int ProfilePoint::* member) {
  std::vector<int> values;
  values.reserve(points.size());
  for (const ProfilePoint& point : points) values.push_back(point.*member);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace

ProfileSurface::ProfileSurface(const ProfileTable& table)
    : model_(table.model()), points_(table.points()) {
  sizes_ = distinct_sorted(points_, &ProfilePoint::gpcs);
  batches_ = distinct_sorted(points_, &ProfilePoint::batch);
  procs_ = distinct_sorted(points_, &ProfilePoint::procs);

  // Dense exact-coordinate index. Later duplicates of a coordinate win,
  // but the profiler emits each coordinate once; ProfileTable::find returns
  // the first duplicate, so keep first-wins here too.
  dense_.assign(sizes_.size() * batches_.size() * procs_.size(), -1);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const ProfilePoint& point = points_[i];
    const int si = axis_index(sizes_, point.gpcs);
    const int bi = axis_index(batches_, point.batch);
    const int pi = axis_index(procs_, point.procs);
    auto& slot = dense_[(static_cast<std::size_t>(si) * batches_.size() +
                         static_cast<std::size_t>(bi)) *
                            procs_.size() +
                        static_cast<std::size_t>(pi)];
    if (slot < 0) slot = static_cast<std::int32_t>(i);
  }

  // One shelf per (instance size, process cap): feasible points with
  // procs <= procs_[cap], sorted by latency, with a prefix-argmax of
  // throughput. Tie order inside the prefix-argmax is (throughput desc,
  // table order asc) so queries reproduce a first-wins linear scan.
  shelves_.resize(sizes_.size() * procs_.size());
  for (std::size_t si = 0; si < sizes_.size(); ++si) {
    for (std::size_t ci = 0; ci < procs_.size(); ++ci) {
      Shelf& shelf = shelves_[si * procs_.size() + ci];
      for (std::size_t i = 0; i < points_.size(); ++i) {
        const ProfilePoint& point = points_[i];
        if (point.oom || point.gpcs != sizes_[si] || point.procs > procs_[ci]) continue;
        shelf.by_latency.push_back(static_cast<std::uint32_t>(i));
      }
      std::stable_sort(shelf.by_latency.begin(), shelf.by_latency.end(),
                       [this](std::uint32_t a, std::uint32_t b) {
                         return points_[a].latency_ms < points_[b].latency_ms;
                       });
      shelf.latencies.reserve(shelf.by_latency.size());
      shelf.prefix_best.reserve(shelf.by_latency.size());
      std::uint32_t best = 0;
      for (std::size_t k = 0; k < shelf.by_latency.size(); ++k) {
        const std::uint32_t candidate = shelf.by_latency[k];
        shelf.latencies.push_back(points_[candidate].latency_ms);
        if (k == 0) {
          best = candidate;
        } else {
          const ProfilePoint& cur = points_[candidate];
          const ProfilePoint& top = points_[best];
          if (cur.throughput > top.throughput ||
              (cur.throughput == top.throughput && candidate < best)) {
            best = candidate;
          }
        }
        shelf.prefix_best.push_back(best);
      }
    }
  }
}

const ProfilePoint* ProfileSurface::find(int gpcs, int batch, int procs) const {
  const int si = axis_index(sizes_, gpcs);
  const int bi = axis_index(batches_, batch);
  const int pi = axis_index(procs_, procs);
  if (si < 0 || bi < 0 || pi < 0) return nullptr;
  const std::int32_t slot = dense_[(static_cast<std::size_t>(si) * batches_.size() +
                                    static_cast<std::size_t>(bi)) *
                                       procs_.size() +
                                   static_cast<std::size_t>(pi)];
  return slot < 0 ? nullptr : &points_[static_cast<std::size_t>(slot)];
}

const ProfileSurface::Shelf* ProfileSurface::shelf_for(int gpcs, int procs_cap) const {
  const int si = axis_index(sizes_, gpcs);
  if (si < 0) return nullptr;
  // Largest recorded process count within the cap.
  const auto it = std::upper_bound(procs_.begin(), procs_.end(), procs_cap);
  if (it == procs_.begin()) return nullptr;  // cap below every recorded count
  const auto ci = static_cast<std::size_t>(it - procs_.begin()) - 1;
  return &shelves_[static_cast<std::size_t>(si) * procs_.size() + ci];
}

const ProfilePoint* ProfileSurface::best_with_end(const Shelf* shelf, std::size_t end) const {
  if (shelf == nullptr || end == 0) return nullptr;
  return &points_[shelf->prefix_best[end - 1]];
}

const ProfilePoint* ProfileSurface::best_below(int gpcs, int procs_cap,
                                               double latency_bound_ms) const {
  const Shelf* shelf = shelf_for(gpcs, procs_cap);
  if (shelf == nullptr) return nullptr;
  const auto end = static_cast<std::size_t>(
      std::lower_bound(shelf->latencies.begin(), shelf->latencies.end(), latency_bound_ms) -
      shelf->latencies.begin());
  return best_with_end(shelf, end);
}

const ProfilePoint* ProfileSurface::best_at_most(int gpcs, int procs_cap,
                                                 double latency_cap_ms) const {
  const Shelf* shelf = shelf_for(gpcs, procs_cap);
  if (shelf == nullptr) return nullptr;
  const auto end = static_cast<std::size_t>(
      std::upper_bound(shelf->latencies.begin(), shelf->latencies.end(), latency_cap_ms) -
      shelf->latencies.begin());
  return best_with_end(shelf, end);
}

ProfileSurfaceSet::ProfileSurfaceSet(const ProfileSet& profiles) {
  surfaces_.reserve(profiles.size());
  for (const ProfileTable& table : profiles.tables()) add(ProfileSurface(table));
}

void ProfileSurfaceSet::add(ProfileSurface surface) {
  by_model_.emplace(surface.model(), surfaces_.size());
  surfaces_.push_back(std::move(surface));
}

const ProfileSurface* ProfileSurfaceSet::find(const std::string& model) const {
  const auto it = by_model_.find(model);
  return it == by_model_.end() ? nullptr : &surfaces_[it->second];
}

}  // namespace parva::profiler
