#include "profiler/profile_store.hpp"

#include <fstream>
#include <sstream>

#include "common/strings.hpp"

namespace parva::profiler {

namespace {
constexpr const char* kHeader = "model,gpcs,batch,procs,oom,throughput,latency_ms,sm_occupancy,memory_gib";
}

std::string to_csv(const ProfileSet& set) {
  std::string out = kHeader;
  out += '\n';
  for (const auto& table : set.tables()) {
    for (const auto& p : table.points()) {
      out += p.model;
      out += ',' + std::to_string(p.gpcs);
      out += ',' + std::to_string(p.batch);
      out += ',' + std::to_string(p.procs);
      out += ',' + std::string(p.oom ? "1" : "0");
      out += ',' + format_double(p.throughput, 4);
      out += ',' + format_double(p.latency_ms, 4);
      out += ',' + format_double(p.sm_occupancy, 4);
      out += ',' + format_double(p.memory_gib, 4);
      out += '\n';
    }
  }
  return out;
}

Result<ProfileSet> from_csv(const std::string& csv) {
  ProfileSet set;
  ProfileTable* current = nullptr;
  std::string current_model;

  std::istringstream stream(csv);
  std::string line;
  bool first = true;
  std::vector<ProfileTable> tables;
  while (std::getline(stream, line)) {
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (first) {
      first = false;
      if (trimmed != kHeader) {
        return Error(ErrorCode::kInvalidArgument, "unexpected CSV header: " + std::string(trimmed));
      }
      continue;
    }
    const auto fields = split(trimmed, ',');
    if (fields.size() != 9) {
      return Error(ErrorCode::kInvalidArgument, "malformed CSV row: " + std::string(trimmed));
    }
    ProfilePoint point;
    point.model = fields[0];
    unsigned long long u = 0;
    double d = 0.0;
    if (!parse_uint(fields[1], u)) return Error(ErrorCode::kInvalidArgument, "bad gpcs");
    point.gpcs = static_cast<int>(u);
    if (!parse_uint(fields[2], u)) return Error(ErrorCode::kInvalidArgument, "bad batch");
    point.batch = static_cast<int>(u);
    if (!parse_uint(fields[3], u)) return Error(ErrorCode::kInvalidArgument, "bad procs");
    point.procs = static_cast<int>(u);
    if (!parse_uint(fields[4], u)) return Error(ErrorCode::kInvalidArgument, "bad oom flag");
    point.oom = u != 0;
    if (!parse_double(fields[5], d)) return Error(ErrorCode::kInvalidArgument, "bad throughput");
    point.throughput = d;
    if (!parse_double(fields[6], d)) return Error(ErrorCode::kInvalidArgument, "bad latency");
    point.latency_ms = d;
    if (!parse_double(fields[7], d)) return Error(ErrorCode::kInvalidArgument, "bad occupancy");
    point.sm_occupancy = d;
    if (!parse_double(fields[8], d)) return Error(ErrorCode::kInvalidArgument, "bad memory");
    point.memory_gib = d;

    if (current == nullptr || current_model != point.model) {
      tables.emplace_back(point.model);
      current = &tables.back();
      current_model = point.model;
    }
    current->add(std::move(point));
  }
  for (auto& table : tables) set.add(std::move(table));
  return set;
}

Status save_csv_file(const ProfileSet& set, const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return Status(ErrorCode::kInvalidArgument, "cannot open " + path);
  file << to_csv(set);
  return Status::Ok();
}

Result<ProfileSet> load_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Error(ErrorCode::kNotFound, "cannot open " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return from_csv(buffer.str());
}

}  // namespace parva::profiler
