// CSV persistence for profile data: profiling is a one-time cost per model
// (Section III-C), so deployments save the grid and reload it on restart.
#pragma once

#include <string>

#include "common/error.hpp"
#include "profiler/profile_types.hpp"

namespace parva::profiler {

/// Serialises a ProfileSet to CSV text (header + one row per point).
std::string to_csv(const ProfileSet& set);

/// Parses CSV text produced by to_csv(). Fails on malformed rows.
[[nodiscard]] Result<ProfileSet> from_csv(const std::string& csv);

/// File convenience wrappers.
[[nodiscard]] Status save_csv_file(const ProfileSet& set, const std::string& path);
[[nodiscard]] Result<ProfileSet> load_csv_file(const std::string& path);

}  // namespace parva::profiler
