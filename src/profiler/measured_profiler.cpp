#include "profiler/measured_profiler.hpp"

#include "common/logging.hpp"

namespace parva::profiler {

Result<ProfileTable> MeasuredProfiler::profile(const std::string& model_name) {
  const perfmodel::WorkloadTraits* traits = perf_->catalog().find(model_name);
  if (traits == nullptr) {
    return Error(ErrorCode::kNotFound, "unknown model " + model_name);
  }
  if (options_.profiling_device >= nvml_->device_count()) {
    return Error(ErrorCode::kInvalidArgument, "no such profiling device");
  }
  gpu::VirtualGpu& device = nvml_->cluster().gpu(options_.profiling_device);
  if (!device.empty()) {
    return Error(ErrorCode::kInvalidArgument, "profiling device must be idle");
  }

  Rng rng(options_.seed);
  ProfileTable table(model_name);

  for (int gpcs : options_.grid.instance_sizes) {
    for (int batch : options_.grid.batch_sizes) {
      for (int procs = 1; procs <= options_.grid.max_processes; ++procs) {
        ProfilePoint point;
        point.model = model_name;
        point.gpcs = gpcs;
        point.batch = batch;
        point.procs = procs;

        // Provision the segment through the control plane.
        gpu::GlobalInstanceId instance;
        auto ret = nvml_->create_gpu_instance(options_.profiling_device, gpcs, &instance);
        if (ret != gpu::NvmlReturn::kSuccess) {
          return Error(ErrorCode::kInternal,
                       std::string("profiling instance creation failed: ") +
                           gpu::nvml_error_string(ret));
        }
        if (procs > 1) {
          ret = nvml_->start_mps_daemon(instance);
          if (ret != gpu::NvmlReturn::kSuccess) {
            rollback_instance(instance);
            return Error(ErrorCode::kInternal,
                         std::string("profiling MPS daemon start failed: ") +
                             gpu::nvml_error_string(ret));
          }
        }

        const double process_mem =
            perfmodel::AnalyticalPerfModel::process_memory_gib(*traits, batch);
        bool oom = false;
        for (int p = 0; p < procs; ++p) {
          ret = nvml_->launch_process(instance, {model_name, batch, process_mem});
          if (ret == gpu::NvmlReturn::kErrorInsufficientMemory) {
            oom = true;  // CUDA OOM on this grid point: record and move on
            break;
          }
          if (ret != gpu::NvmlReturn::kSuccess) {
            rollback_instance(instance);
            return Error(ErrorCode::kInternal, std::string("process launch failed: ") +
                                                   gpu::nvml_error_string(ret));
          }
        }

        if (oom) {
          point.oom = true;
        } else {
          // Closed-loop measurement: back-to-back batches, noisy per-batch
          // latency, warm-up discarded.
          const auto ground_truth = perf_->evaluate_mig(*traits, gpcs, batch, procs);
          PARVA_CHECK(ground_truth.ok(),
                      "launch succeeded but the operating point is infeasible");
          const double true_latency = ground_truth.value().latency_ms;
          for (int i = 0; i < options_.warmup_batches; ++i) {
            (void)perfmodel::AnalyticalPerfModel::sample_latency_ms(true_latency, rng);
          }
          double total_ms = 0.0;
          for (int i = 0; i < options_.measurement_batches; ++i) {
            total_ms += perfmodel::AnalyticalPerfModel::sample_latency_ms(true_latency, rng);
          }
          const double mean_latency = total_ms / options_.measurement_batches;
          point.latency_ms = mean_latency;
          point.throughput =
              1000.0 * static_cast<double>(procs) * static_cast<double>(batch) / mean_latency;
          point.sm_occupancy = ground_truth.value().sm_occupancy;
          point.memory_gib = ground_truth.value().memory_gib;
        }

        const auto kill_ret = nvml_->kill_processes(instance);
        if (kill_ret != gpu::NvmlReturn::kSuccess) {
          // Keep going: destroy below is the teardown that matters, and it
          // is checked.
          PARVA_LOG_WARN << "profiling: kill_processes failed: "
                         << gpu::nvml_error_string(kill_ret);
        }
        ret = nvml_->destroy_gpu_instance(instance);
        if (ret != gpu::NvmlReturn::kSuccess) {
          return Error(ErrorCode::kInternal, std::string("profiling teardown failed: ") +
                                                 gpu::nvml_error_string(ret));
        }
        table.add(std::move(point));
      }
    }
  }
  PARVA_CHECK(device.empty(), "profiling must leave the device idle");
  return table;
}

void MeasuredProfiler::rollback_instance(gpu::GlobalInstanceId instance) {
  const auto kill_ret = nvml_->kill_processes(instance);
  if (kill_ret != gpu::NvmlReturn::kSuccess) {
    PARVA_LOG_WARN << "profiling rollback: kill_processes failed: "
                   << gpu::nvml_error_string(kill_ret);
  }
  const auto destroy_ret = nvml_->destroy_gpu_instance(instance);
  if (destroy_ret != gpu::NvmlReturn::kSuccess) {
    PARVA_LOG_WARN << "profiling rollback: destroy_gpu_instance failed: "
                   << gpu::nvml_error_string(destroy_ret);
  }
}

Result<ProfileSet> MeasuredProfiler::profile_all(const std::vector<std::string>& model_names) {
  ProfileSet set;
  for (const std::string& name : model_names) {
    auto table = profile(name);
    if (!table.ok()) return table.error();
    set.add(std::move(table).value());
  }
  return set;
}

}  // namespace parva::profiler
