#include "baselines/igniter.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "baselines/mps_partition.hpp"
#include "perfmodel/interference.hpp"

namespace parva::baselines {
namespace {

struct SizedService {
  const core::ServiceSpec* spec = nullptr;
  const perfmodel::WorkloadTraits* traits = nullptr;
  double padded_fraction = 0.0;
  PartitionPoint point;  ///< operating point at the padded fraction
};

struct IgniterGpu {
  std::vector<SizedService> partitions;
  double used_fraction = 0.0;
};

}  // namespace

Result<core::ScheduleResult> IgniterScheduler::schedule(
    std::span<const core::ServiceSpec> services) {
  const auto start = std::chrono::steady_clock::now();
  // Per-run memo: the fraction/batch sweeps below revisit the same
  // operating points across services sharing a model.
  const perfmodel::CachedPerfModel cache(*perf_);

  // Phase 1: per-service sizing with iGniter's (noisy) predictor + padding.
  std::vector<SizedService> sized;
  for (const core::ServiceSpec& spec : services) {
    const perfmodel::WorkloadTraits* traits = perf_->catalog().find(spec.model);
    if (traits == nullptr) {
      return Error(ErrorCode::kNotFound, "unknown model " + spec.model);
    }
    const double latency_cap = spec.slo_latency_ms * options_.internal_latency_factor;

    // iGniter assumes a nominal co-location environment when sizing; its
    // predictor supplies the expected inflation for one average co-runner.
    const perfmodel::CoRunner nominal{traits, 0.5};
    const double predicted_inflation =
        perfmodel::igniter_predicted_interference(*traits, {&nominal, 1});

    auto required = smallest_fraction_for_rate(cache, *traits, spec.request_rate, latency_cap,
                                               options_.fraction_quantum, predicted_inflation);
    if (!required.has_value()) {
      // The published system cannot split a service across partitions; at
      // high request rates it simply cannot run (paper: fails S5/S6).
      return Error(ErrorCode::kCapacityExceeded,
                   "iGniter cannot satisfy " + spec.model + " at " +
                       std::to_string(spec.request_rate) + " req/s within one GPU partition");
    }

    double padded = required->gpu_fraction * (1.0 + options_.padding_factor) +
                    options_.padding_bias;
    padded = std::min(1.0, padded);
    // Quantize up to the 5% grid.
    padded = std::ceil(padded / options_.fraction_quantum - 1e-9) * options_.fraction_quantum;

    auto padded_point =
        best_partition_point(cache, *traits, padded, latency_cap, predicted_inflation);
    if (!padded_point.has_value()) padded_point = required;
    sized.push_back(SizedService{&spec, traits, padded, *padded_point});
  }

  // Phase 2: first-fit-decreasing packing; each addition is admitted only
  // if the predictor says every member of the GPU still meets its SLO.
  std::sort(sized.begin(), sized.end(), [](const SizedService& a, const SizedService& b) {
    return a.padded_fraction > b.padded_fraction;
  });

  std::vector<IgniterGpu> gpus;
  for (const SizedService& service : sized) {
    bool placed = false;
    for (IgniterGpu& gpu : gpus) {
      if (static_cast<int>(gpu.partitions.size()) >= options_.max_partitions_per_gpu) continue;
      if (gpu.used_fraction + service.padded_fraction > 1.0 + 1e-9) continue;

      // Predicted feasibility for every member including the newcomer.
      auto feasible = [&](const SizedService& member,
                          const std::vector<SizedService>& cohort) {
        std::vector<perfmodel::CoRunner> others;
        for (const SizedService& other : cohort) {
          if (other.spec->id == member.spec->id) continue;
          others.push_back({other.traits, other.padded_fraction});
        }
        const double inflation =
            perfmodel::igniter_predicted_interference(*member.traits, others);
        const double cap = member.spec->slo_latency_ms * options_.internal_latency_factor;
        auto point =
            best_partition_point(cache, *member.traits, member.padded_fraction, cap, inflation);
        return point.has_value() && point->throughput >= member.spec->request_rate;
      };
      std::vector<SizedService> cohort = gpu.partitions;
      cohort.push_back(service);
      bool all_ok = true;
      for (const SizedService& member : cohort) {
        if (!feasible(member, cohort)) {
          all_ok = false;
          break;
        }
      }
      if (!all_ok) continue;

      gpu.partitions.push_back(service);
      gpu.used_fraction += service.padded_fraction;
      placed = true;
      break;
    }
    if (!placed) {
      IgniterGpu gpu;
      gpu.partitions.push_back(service);
      gpu.used_fraction = service.padded_fraction;
      gpus.push_back(std::move(gpu));
    }
  }

  const auto stop = std::chrono::steady_clock::now();

  // Materialise with ground-truth interference.
  core::Deployment deployment;
  deployment.framework = name();
  deployment.uses_mig = false;
  deployment.gpu_count = static_cast<int>(gpus.size());
  for (std::size_t gi = 0; gi < gpus.size(); ++gi) {
    const IgniterGpu& gpu = gpus[gi];
    for (std::size_t pi = 0; pi < gpu.partitions.size(); ++pi) {
      const SizedService& member = gpu.partitions[pi];
      std::vector<perfmodel::CoRunner> others;
      for (std::size_t qi = 0; qi < gpu.partitions.size(); ++qi) {
        if (qi == pi) continue;
        others.push_back({gpu.partitions[qi].traits, gpu.partitions[qi].padded_fraction});
      }
      const double true_inflation = perfmodel::true_interference(*member.traits, others);
      auto actual = cache.evaluate_mps_share(*member.traits, member.padded_fraction,
                                              member.point.batch, 1, true_inflation);

      core::DeployedUnit unit;
      unit.service_id = member.spec->id;
      unit.model = member.spec->model;
      unit.gpu_index = static_cast<int>(gi);
      unit.gpc_grant = member.padded_fraction * 7.0;
      unit.batch = member.point.batch;
      unit.procs = 1;
      unit.planned_throughput = member.point.throughput;
      unit.planned_latency_ms = member.point.latency_ms;
      if (actual.ok()) {
        unit.actual_throughput = actual.value().throughput;
        unit.actual_latency_ms = actual.value().latency_ms;
        unit.sm_occupancy = actual.value().sm_occupancy;
        unit.memory_gib = actual.value().memory_gib;
      } else {
        unit.actual_throughput = member.point.throughput;
        unit.actual_latency_ms = member.point.latency_ms;
        unit.sm_occupancy = member.point.sm_occupancy;
        unit.memory_gib = member.point.memory_gib;
      }
      deployment.units.push_back(std::move(unit));
    }
  }

  core::ScheduleResult result;
  result.deployment = std::move(deployment);
  result.scheduling_delay_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return result;
}

}  // namespace parva::baselines
