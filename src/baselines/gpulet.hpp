// gpulet baseline (Choi et al., USENIX ATC'22), as characterised in the
// paper's Sections I/II-A:
//   * MPS percentage partitions on whole GPUs, at most TWO workloads per
//     GPU.
//   * A service whose rate exceeds one partition is split into multiple
//     "gpulets" (chunks).
//   * The first partition on a GPU is sized to its workload's need (10%
//     quanta); the second partition receives ALL remaining resources —
//     which avoids external fragmentation but creates internal slack.
//   * Pairing is admitted using gpulet's interference prediction, which is
//     slightly optimistic (kGpuletContention < kTrueContention); the
//     resulting under-provisioning reproduces the paper's S2 SLO-violation
//     episode.
#pragma once

#include "core/deployment.hpp"
#include "perfmodel/analytical_model.hpp"

namespace parva::baselines {

struct GpuletOptions {
  double fraction_quantum = 0.10;      ///< gpulet sizes partitions in 10% steps
  double internal_latency_factor = 0.5;
};

class GpuletScheduler final : public core::Scheduler {
 public:
  explicit GpuletScheduler(const perfmodel::AnalyticalPerfModel& perf,
                           GpuletOptions options = {})
      : perf_(&perf), options_(options) {}

  std::string name() const override { return "gpulet"; }
  [[nodiscard]] Result<core::ScheduleResult> schedule(std::span<const core::ServiceSpec> services) override;

 private:
  const perfmodel::AnalyticalPerfModel* perf_;
  GpuletOptions options_;
};

}  // namespace parva::baselines
