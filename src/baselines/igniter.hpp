// iGniter baseline (Xu et al., TPDS'22), as characterised in the paper's
// Sections I/II-A:
//   * MPS percentage partitions; each service is provisioned ONE partition
//     sized by an interference-aware performance model (5% quanta).
//   * The model's coefficients come from lightweight profiling and carry
//     per-pair error; iGniter compensates by PADDING every allocation —
//     the source of its internal slack.
//   * No mechanism handles request rates beyond a single full-GPU
//     partition, so high-rate scenarios (the paper's S5/S6) fail.
//   * No external-fragmentation handling: partitions are first-fit-decreasing
//     packed; leftover GPU fractions are wasted (~27% in the paper).
#pragma once

#include "core/deployment.hpp"
#include "perfmodel/analytical_model.hpp"

namespace parva::baselines {

struct IgniterOptions {
  double fraction_quantum = 0.05;
  double internal_latency_factor = 0.5;
  /// Relative padding applied to the predicted required fraction.
  double padding_factor = 0.15;
  /// Absolute padding (fraction of a GPU).
  double padding_bias = 0.025;
  /// Maximum co-located workloads per GPU iGniter will attempt.
  int max_partitions_per_gpu = 4;
};

class IgniterScheduler final : public core::Scheduler {
 public:
  explicit IgniterScheduler(const perfmodel::AnalyticalPerfModel& perf,
                            IgniterOptions options = {})
      : perf_(&perf), options_(options) {}

  std::string name() const override { return "iGniter"; }
  [[nodiscard]] Result<core::ScheduleResult> schedule(std::span<const core::ServiceSpec> services) override;

 private:
  const perfmodel::AnalyticalPerfModel* perf_;
  IgniterOptions options_;
};

}  // namespace parva::baselines
