#include "baselines/mig_serving.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <map>

#include "common/rng.hpp"

#include "core/parvagpu.hpp"
#include "core/plan.hpp"

namespace parva::baselines {
namespace {

constexpr std::array<int, 5> kSizes = {1, 2, 3, 4, 7};

/// Per-service best single-process operating point per instance size.
struct ServiceProfile {
  const core::ServiceSpec* spec = nullptr;
  std::array<std::optional<core::Triplet>, 5> best;  ///< by size index
};

/// The greedy's current sizing decision for one service.
struct Sizing {
  int size_index = -1;
  int count = 0;
};

int size_to_index(int gpcs) {
  for (std::size_t i = 0; i < kSizes.size(); ++i) {
    if (kSizes[i] == gpcs) return static_cast<int>(i);
  }
  return -1;
}

/// Packs the chosen instances of all services, first-fit decreasing.
core::DeploymentPlan pack(const std::vector<ServiceProfile>& profiles,
                          const std::vector<Sizing>& sizing) {
  std::vector<core::Segment> instances;
  for (std::size_t si = 0; si < profiles.size(); ++si) {
    const auto& triplet = profiles[si].best[static_cast<std::size_t>(sizing[si].size_index)];
    for (int c = 0; c < sizing[si].count; ++c) {
      instances.push_back(core::Segment{profiles[si].spec->id, *triplet});
    }
  }
  std::sort(instances.begin(), instances.end(), [](const core::Segment& a, const core::Segment& b) {
    return a.triplet.gpcs > b.triplet.gpcs;
  });
  core::DeploymentPlan plan;
  for (const core::Segment& instance : instances) {
    // MIG-serving packs with the driver's hardware slot order; the
    // fragmentation-aware slot preferences of Section III-E1 are ParvaGPU's
    // contribution and deliberately not granted to the baseline.
    bool placed = false;
    for (auto& gpu : plan.gpus()) {
      for (int start : gpu::legal_start_slots(instance.triplet.gpcs)) {
        if (gpu.try_place_at(instance.service_id, instance.triplet, start)) {
          placed = true;
          break;
        }
      }
      if (placed) break;
    }
    if (!placed) plan.place_first_fit(instance.service_id, instance.triplet);
  }
  return plan;
}

}  // namespace

Result<core::ScheduleResult> MigServingScheduler::schedule(
    std::span<const core::ServiceSpec> services) {
  const auto start = std::chrono::steady_clock::now();

  // Collect the best single-process point per (service, size).
  std::vector<ServiceProfile> profiles;
  for (const core::ServiceSpec& spec : services) {
    const profiler::ProfileTable* table = profiles_->find(spec.model);
    if (table == nullptr) {
      return Error(ErrorCode::kNotFound, "no profile for model " + spec.model);
    }
    ServiceProfile profile;
    profile.spec = &spec;
    const double cap = spec.slo_latency_ms * options_.internal_latency_factor;
    bool any = false;
    for (const profiler::ProfilePoint& point : table->points()) {
      if (point.oom || point.procs != 1) continue;  // MIG-serving: no MPS
      if (point.latency_ms >= cap) continue;
      const int idx = size_to_index(point.gpcs);
      if (idx < 0) continue;
      auto& slot = profile.best[static_cast<std::size_t>(idx)];
      if (!slot.has_value() || point.throughput > slot->throughput) {
        slot = core::to_triplet(point);
        any = true;
      }
    }
    if (!any) {
      return Error(ErrorCode::kCapacityExceeded,
                   "MIG-serving: no instance size meets the SLO for " + spec.model);
    }
    profiles.push_back(std::move(profile));
  }

  // Initial greedy sizing: per service choose the size minimising total
  // GPCs for the safety-factored demand (ceil rounding over-allocates).
  auto sizing_for = [&](const ServiceProfile& profile, int idx) -> std::optional<Sizing> {
    const auto& triplet = profile.best[static_cast<std::size_t>(idx)];
    if (!triplet.has_value()) return std::nullopt;
    const double demand = options_.demand_safety * profile.spec->request_rate;
    const int count = std::max(1, static_cast<int>(std::ceil(demand / triplet->throughput)));
    return Sizing{idx, count};
  };
  auto cost_of = [&](const Sizing& sizing) {
    return sizing.count * kSizes[static_cast<std::size_t>(sizing.size_index)];
  };

  std::vector<Sizing> sizing(profiles.size());
  for (std::size_t si = 0; si < profiles.size(); ++si) {
    std::optional<Sizing> best;
    for (std::size_t idx = 0; idx < kSizes.size(); ++idx) {
      auto candidate = sizing_for(profiles[si], static_cast<int>(idx));
      if (!candidate.has_value()) continue;
      if (!best.has_value() || cost_of(*candidate) < cost_of(*best) ||
          (cost_of(*candidate) == cost_of(*best) && candidate->count < best->count)) {
        best = candidate;
      }
    }
    sizing[si] = *best;  // guaranteed by the `any` check above
  }

  // Iterative refinement: try every (service, alternative size) move and
  // keep it when the whole-cluster re-pack uses fewer GPUs. This full
  // re-pack per candidate move is what makes the fast algorithm's
  // scheduling overhead grow steeply with the service count.
  core::DeploymentPlan plan = pack(profiles, sizing);
  for (int round = 0; round < options_.max_refinement_rounds; ++round) {
    bool improved = false;
    for (std::size_t si = 0; si < profiles.size(); ++si) {
      for (std::size_t idx = 0; idx < kSizes.size(); ++idx) {
        if (static_cast<int>(idx) == sizing[si].size_index) continue;
        auto candidate = sizing_for(profiles[si], static_cast<int>(idx));
        if (!candidate.has_value()) continue;
        std::vector<Sizing> trial = sizing;
        trial[si] = *candidate;
        core::DeploymentPlan trial_plan = pack(profiles, trial);
        if (trial_plan.gpu_count() < plan.gpu_count()) {
          sizing = std::move(trial);
          plan = std::move(trial_plan);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  // The slow optimizer: simulated annealing over the sizing vector,
  // seeded from the fast solution. Cost = (GPUs, then allocated GPCs).
  // Bounded by iteration count; the published variants run for hours.
  if (options_.mode == MigServingMode::kSlow && !profiles.empty()) {
    Rng rng(options_.annealing_seed);
    auto cost = [](const core::DeploymentPlan& p) {
      return static_cast<double>(p.gpu_count()) * 1000.0 +
             static_cast<double>(p.total_allocated_gpcs());
    };
    std::vector<Sizing> current = sizing;
    core::DeploymentPlan current_plan = plan;
    double current_cost = cost(current_plan);
    double best_cost = current_cost;
    for (int iter = 0; iter < options_.annealing_iterations; ++iter) {
      const double temperature =
          1.0 - static_cast<double>(iter) / static_cast<double>(options_.annealing_iterations);
      const auto si = static_cast<std::size_t>(rng.uniform_int(0, profiles.size() - 1));
      const auto idx = static_cast<std::size_t>(rng.uniform_int(0, kSizes.size() - 1));
      auto candidate = sizing_for(profiles[si], static_cast<int>(idx));
      if (!candidate.has_value()) continue;
      std::vector<Sizing> trial = current;
      trial[si] = *candidate;
      core::DeploymentPlan trial_plan = pack(profiles, trial);
      const double trial_cost = cost(trial_plan);
      const double delta = trial_cost - current_cost;
      if (delta <= 0.0 || rng.next_double() < std::exp(-delta / (50.0 * temperature + 1e-9))) {
        current = std::move(trial);
        current_plan = std::move(trial_plan);
        current_cost = trial_cost;
        if (current_cost < best_cost) {
          best_cost = current_cost;
          sizing = current;
          plan = current_plan;
        }
      }
    }
  }

  // Anti-fragmentation scoring: absorb leftover slots by adding extra
  // instances (over-allocation) for the most demanding services.
  if (options_.absorb_free_slots) {
    // Order services by request rate, descending, for replica absorption.
    std::vector<std::size_t> by_demand(profiles.size());
    for (std::size_t i = 0; i < by_demand.size(); ++i) by_demand[i] = i;
    std::sort(by_demand.begin(), by_demand.end(), [&](std::size_t a, std::size_t b) {
      return profiles[a].spec->request_rate > profiles[b].spec->request_rate;
    });
    for (auto& gpu : plan.gpus()) {
      bool grew = true;
      while (grew) {
        grew = false;
        // Largest instance size that still fits on this GPU.
        for (auto it = kSizes.rbegin(); it != kSizes.rend() && !grew; ++it) {
          if (!gpu.can_fit(*it)) continue;
          for (std::size_t si : by_demand) {
            const auto& triplet = profiles[si].best[static_cast<std::size_t>(size_to_index(*it))];
            if (!triplet.has_value()) continue;
            const bool placed = gpu.try_place(profiles[si].spec->id, *triplet);
            PARVA_CHECK(placed, "can_fit/try_place disagree");
            grew = true;
            break;
          }
        }
      }
    }
  }
  plan.compact();

  const auto stop = std::chrono::steady_clock::now();

  core::ScheduleResult result;
  result.deployment = core::ParvaGpuScheduler::to_deployment(plan, name());
  for (auto& unit : result.deployment.units) {
    for (const ServiceProfile& profile : profiles) {
      if (profile.spec->id == unit.service_id) {
        unit.model = profile.spec->model;
        break;
      }
    }
  }
  result.scheduling_delay_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return result;
}

}  // namespace parva::baselines
