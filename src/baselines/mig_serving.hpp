// MIG-serving baseline (Tan et al., arXiv:2109.11067), "fast" (greedy)
// algorithm, as characterised in the paper's Sections I/II-B:
//   * Pure MIG, no MPS: one process per instance.
//   * Sizing and placement treated as a cutting-stock-style search: an
//     initial greedy sizing, followed by iterative whole-cluster
//     re-packing refinement — the source of its "very high" scheduling
//     overhead, which grows quickly with the number of services.
//   * The greedy scores favour SLO safety, over-allocating instances
//     (a demand safety factor plus ceil rounding) — the source of its
//     internal slack, most visible at low request rates.
//   * External fragmentation is avoided by scoring: leftover slots are
//     absorbed by growing/adding instances (turning fragmentation into
//     further internal slack).
#pragma once

#include "core/deployment.hpp"
#include "perfmodel/analytical_model.hpp"
#include "profiler/profile_types.hpp"

namespace parva::baselines {

/// MIG-serving ships two optimizers: the greedy "fast" algorithm and a
/// stochastic "slow" algorithm (genetic / Monte-Carlo search in the
/// original; simulated annealing here) that the paper reports taking ~6
/// hours per real-scale scheduling run — we bound it by iteration count.
enum class MigServingMode { kFast, kSlow };

struct MigServingOptions {
  MigServingMode mode = MigServingMode::kFast;
  double internal_latency_factor = 0.5;
  /// Demand safety factor of the greedy scorer.
  double demand_safety = 1.5;
  /// Maximum refinement rounds of the fast algorithm.
  int max_refinement_rounds = 8;
  /// Annealing iterations of the slow algorithm.
  int annealing_iterations = 4000;
  std::uint64_t annealing_seed = 1;
  /// Absorb leftover slots with extra instances (the anti-fragmentation
  /// scoring behaviour).
  bool absorb_free_slots = true;
};

class MigServingScheduler final : public core::Scheduler {
 public:
  /// Uses single-process profile points only (MIG-serving has no MPS).
  MigServingScheduler(const profiler::ProfileSet& profiles, MigServingOptions options = {})
      : profiles_(&profiles), options_(options) {}

  std::string name() const override {
    return options_.mode == MigServingMode::kSlow ? "MIG-serving-slow" : "MIG-serving";
  }
  [[nodiscard]] Result<core::ScheduleResult> schedule(std::span<const core::ServiceSpec> services) override;

 private:
  const profiler::ProfileSet* profiles_;
  MigServingOptions options_;
};

}  // namespace parva::baselines
