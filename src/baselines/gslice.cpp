#include "baselines/gslice.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "baselines/mps_partition.hpp"
#include "perfmodel/interference.hpp"

namespace parva::baselines {
namespace {

struct TunedPartition {
  const core::ServiceSpec* spec = nullptr;
  const perfmodel::WorkloadTraits* traits = nullptr;
  double fraction = 0.0;
  PartitionPoint point;  ///< measured operating point under real co-location
};

}  // namespace

Result<core::ScheduleResult> GsliceScheduler::schedule(
    std::span<const core::ServiceSpec> services) {
  const auto start = std::chrono::steady_clock::now();
  // Per-run memo: the fraction/batch sweeps below revisit the same
  // operating points across services sharing a model.
  const perfmodel::CachedPerfModel cache(*perf_);
  if (services.empty()) {
    core::ScheduleResult empty;
    empty.deployment.framework = name();
    return empty;
  }

  std::vector<TunedPartition> partitions;
  for (const core::ServiceSpec& spec : services) {
    const perfmodel::WorkloadTraits* traits = perf_->catalog().find(spec.model);
    if (traits == nullptr) {
      return Error(ErrorCode::kNotFound, "unknown model " + spec.model);
    }
    partitions.push_back({&spec, traits, 0.0, {}});
  }

  // Start from an even split (GSLICE's initial configuration), quantized.
  const double initial =
      std::floor(1.0 / static_cast<double>(partitions.size()) / options_.fraction_quantum) *
      options_.fraction_quantum;
  if (initial < options_.fraction_quantum) {
    return Error(ErrorCode::kCapacityExceeded,
                 "GSLICE: more workloads than minimum partitions on one GPU");
  }
  for (auto& partition : partitions) partition.fraction = initial;

  // "Measure" a partition under the current configuration: GSLICE observes
  // real latency/throughput, so the measurement uses TRUE interference.
  auto measure = [&](std::size_t index) -> std::optional<PartitionPoint> {
    std::vector<perfmodel::CoRunner> others;
    for (std::size_t j = 0; j < partitions.size(); ++j) {
      if (j == index) continue;
      others.push_back({partitions[j].traits, partitions[j].fraction});
    }
    const double inflation = perfmodel::true_interference(*partitions[index].traits, others);
    const double cap =
        partitions[index].spec->slo_latency_ms * options_.internal_latency_factor;
    return best_partition_point(cache, *partitions[index].traits,
                                partitions[index].fraction, cap, inflation);
  };

  // Self-tuning loop: grow starving partitions from the free pool or from
  // the partition with the largest relative headroom; shrink partitions
  // whose headroom stays large (slack prevention).
  for (int round = 0; round < options_.max_tuning_rounds; ++round) {
    bool changed = false;

    double used = 0.0;
    for (const auto& partition : partitions) used += partition.fraction;
    double free_pool = 1.0 - used;

    // Measure everyone.
    std::vector<double> headroom(partitions.size());  // tp/rate - 1
    for (std::size_t i = 0; i < partitions.size(); ++i) {
      const auto point = measure(i);
      if (point.has_value()) {
        partitions[i].point = *point;
        headroom[i] = point->throughput / partitions[i].spec->request_rate - 1.0;
      } else {
        headroom[i] = -1.0;  // cannot even meet latency: starving
      }
    }

    // Grow the most starving partition.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < partitions.size(); ++i) {
      if (headroom[i] < headroom[worst]) worst = i;
    }
    if (headroom[worst] < 0.0) {
      if (free_pool >= options_.fraction_quantum - 1e-12) {
        partitions[worst].fraction += options_.fraction_quantum;
        changed = true;
      } else {
        // Steal from the partition with the largest headroom, if it can
        // afford a quantum.
        std::size_t best = 0;
        for (std::size_t i = 1; i < partitions.size(); ++i) {
          if (headroom[i] > headroom[best]) best = i;
        }
        if (best != worst && headroom[best] > 0.15 &&
            partitions[best].fraction > options_.fraction_quantum + 1e-12) {
          partitions[best].fraction -= options_.fraction_quantum;
          partitions[worst].fraction += options_.fraction_quantum;
          changed = true;
        }
      }
    } else {
      // Everyone satisfied: shrink the most over-provisioned partition to
      // prevent internal slack, as long as a healthy margin remains.
      std::size_t fattest = 0;
      for (std::size_t i = 1; i < partitions.size(); ++i) {
        if (headroom[i] > headroom[fattest]) fattest = i;
      }
      if (headroom[fattest] > 0.30 &&
          partitions[fattest].fraction > options_.fraction_quantum + 1e-12) {
        const double saved = partitions[fattest].fraction;
        partitions[fattest].fraction -= options_.fraction_quantum;
        const auto shrunk = measure(fattest);
        if (shrunk.has_value() &&
            shrunk->throughput >= partitions[fattest].spec->request_rate) {
          changed = true;
        } else {
          partitions[fattest].fraction = saved;  // revert
        }
      }
    }
    if (!changed) break;
  }

  // Final verification.
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const auto point = measure(i);
    if (!point.has_value() || point->throughput < partitions[i].spec->request_rate) {
      return Error(ErrorCode::kCapacityExceeded,
                   "GSLICE: " + partitions[i].spec->model +
                       " cannot meet its SLO/rate on a single shared GPU");
    }
    partitions[i].point = *point;
  }

  const auto stop = std::chrono::steady_clock::now();

  core::Deployment deployment;
  deployment.framework = name();
  deployment.uses_mig = false;
  deployment.gpu_count = 1;
  for (const TunedPartition& partition : partitions) {
    core::DeployedUnit unit;
    unit.service_id = partition.spec->id;
    unit.model = partition.spec->model;
    unit.gpu_index = 0;
    unit.gpc_grant = partition.fraction * 7.0;
    unit.batch = partition.point.batch;
    unit.procs = 1;
    // GSLICE plans from measurement: planned == actual.
    unit.planned_throughput = partition.point.throughput;
    unit.planned_latency_ms = partition.point.latency_ms;
    unit.actual_throughput = partition.point.throughput;
    unit.actual_latency_ms = partition.point.latency_ms;
    unit.sm_occupancy = partition.point.sm_occupancy;
    unit.memory_gib = partition.point.memory_gib;
    deployment.units.push_back(std::move(unit));
  }

  core::ScheduleResult result;
  result.deployment = std::move(deployment);
  result.scheduling_delay_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return result;
}

}  // namespace parva::baselines
