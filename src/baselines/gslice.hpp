// GSLICE baseline (Dhakal et al., SoCC'20), as characterised in the
// paper's Table I and Section II-A:
//   * MPS percentage partitions on a SINGLE GPU with a self-tuning loop:
//     partition sizes are adjusted from *measured* latency/throughput (no
//     prediction model, hence no misprediction) until every workload meets
//     its SLO; adaptive batching picks the largest batch that still fits.
//   * Prevents internal slack (partitions shrink to fit) but has no
//     multi-GPU story: workload sets that exceed one GPU are infeasible
//     ("high request rate support: no" in Table I).
#pragma once

#include "core/deployment.hpp"
#include "perfmodel/analytical_model.hpp"

namespace parva::baselines {

struct GsliceOptions {
  double fraction_quantum = 0.025;  ///< GSLICE retunes in fine-grained steps
  double internal_latency_factor = 0.5;
  int max_tuning_rounds = 64;
};

class GsliceScheduler final : public core::Scheduler {
 public:
  explicit GsliceScheduler(const perfmodel::AnalyticalPerfModel& perf,
                           GsliceOptions options = {})
      : perf_(&perf), options_(options) {}

  std::string name() const override { return "GSLICE"; }
  [[nodiscard]] Result<core::ScheduleResult> schedule(std::span<const core::ServiceSpec> services) override;

 private:
  const perfmodel::AnalyticalPerfModel* perf_;
  GsliceOptions options_;
};

}  // namespace parva::baselines
