// Shared helpers for the MPS-percentage-partition baselines (gpulet,
// iGniter): best-batch search for a partition of a given GPU fraction under
// a latency bound and an interference assumption.
#pragma once

#include <optional>

#include "perfmodel/analytical_model.hpp"
#include "perfmodel/perf_cache.hpp"

namespace parva::baselines {

/// A candidate MPS partition operating point.
struct PartitionPoint {
  double gpu_fraction = 0.0;
  int batch = 1;
  double throughput = 0.0;
  double latency_ms = 0.0;
  double sm_occupancy = 0.0;
  double memory_gib = 0.0;
};

/// Highest-throughput batch (power-of-two grid 1..128, single process) for
/// a partition of `gpu_fraction`, assuming `interference_inflation`, with
/// latency below `latency_cap_ms`. nullopt when no batch fits.
std::optional<PartitionPoint> best_partition_point(const perfmodel::AnalyticalPerfModel& perf,
                                                   const perfmodel::WorkloadTraits& traits,
                                                   double gpu_fraction, double latency_cap_ms,
                                                   double interference_inflation);

/// Memoized variant: identical results, repeated points cost a hash lookup.
std::optional<PartitionPoint> best_partition_point(const perfmodel::CachedPerfModel& perf,
                                                   const perfmodel::WorkloadTraits& traits,
                                                   double gpu_fraction, double latency_cap_ms,
                                                   double interference_inflation);

/// Smallest fraction from `quantum` steps whose best point reaches
/// `target_throughput` under the latency cap; nullopt if even a full GPU
/// cannot.
std::optional<PartitionPoint> smallest_fraction_for_rate(
    const perfmodel::AnalyticalPerfModel& perf, const perfmodel::WorkloadTraits& traits,
    double target_throughput, double latency_cap_ms, double quantum,
    double interference_inflation);

/// Memoized variant: identical results, repeated points cost a hash lookup.
std::optional<PartitionPoint> smallest_fraction_for_rate(
    const perfmodel::CachedPerfModel& perf, const perfmodel::WorkloadTraits& traits,
    double target_throughput, double latency_cap_ms, double quantum,
    double interference_inflation);

}  // namespace parva::baselines
