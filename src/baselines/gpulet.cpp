#include "baselines/gpulet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "baselines/mps_partition.hpp"
#include "perfmodel/interference.hpp"

namespace parva::baselines {
namespace {

/// One gpulet: a chunk of a service assigned to one MPS partition.
struct Chunk {
  const core::ServiceSpec* spec = nullptr;
  const perfmodel::WorkloadTraits* traits = nullptr;
  double target_rate = 0.0;    ///< the share of the service this chunk serves
  double fraction = 0.0;       ///< requested partition fraction
  PartitionPoint point;        ///< interference-free operating point
};

/// A GPU under construction: up to two partitions.
struct GpuletGpu {
  std::vector<Chunk> partitions;       ///< at most 2
  std::vector<double> granted;         ///< granted fraction per partition
};

}  // namespace

Result<core::ScheduleResult> GpuletScheduler::schedule(
    std::span<const core::ServiceSpec> services) {
  const auto start = std::chrono::steady_clock::now();
  // Per-run memo: the fraction/batch sweeps below revisit the same
  // operating points across services sharing a model.
  const perfmodel::CachedPerfModel cache(*perf_);

  // Phase 1: size each service into chunks. The bulk chunk uses the most
  // resource-efficient fraction (throughput per fraction); the remainder
  // chunk uses the smallest fraction covering it.
  std::vector<Chunk> chunks;
  for (const core::ServiceSpec& spec : services) {
    const perfmodel::WorkloadTraits* traits = perf_->catalog().find(spec.model);
    if (traits == nullptr) {
      return Error(ErrorCode::kNotFound, "unknown model " + spec.model);
    }
    const double latency_cap = spec.slo_latency_ms * options_.internal_latency_factor;

    // Most efficient bulk fraction.
    std::optional<PartitionPoint> bulk;
    const int steps = static_cast<int>(1.0 / options_.fraction_quantum + 0.5);
    for (int i = 1; i <= steps; ++i) {
      const double fraction = options_.fraction_quantum * static_cast<double>(i);
      auto point = best_partition_point(cache, *traits, fraction, latency_cap, 0.0);
      if (!point.has_value()) continue;
      if (!bulk.has_value() ||
          point->throughput / point->gpu_fraction > bulk->throughput / bulk->gpu_fraction) {
        bulk = point;
      }
    }
    if (!bulk.has_value()) {
      return Error(ErrorCode::kCapacityExceeded,
                   "gpulet: no partition meets the SLO for " + spec.model);
    }

    double remaining = spec.request_rate;
    while (remaining > bulk->throughput) {
      chunks.push_back(Chunk{&spec, traits, bulk->throughput, bulk->gpu_fraction, *bulk});
      remaining -= bulk->throughput;
    }
    if (remaining > 0.0) {
      auto last = smallest_fraction_for_rate(cache, *traits, remaining, latency_cap,
                                             options_.fraction_quantum, 0.0);
      if (!last.has_value()) last = bulk;  // bulk always covers the remainder
      chunks.push_back(Chunk{&spec, traits, remaining, last->gpu_fraction, *last});
    }
  }

  // Phase 2: pair chunks onto GPUs (max two partitions per GPU). Chunks are
  // placed in descending fraction order; a chunk joins a single-partition
  // GPU when gpulet's interference prediction says both workloads still
  // meet their SLOs, with the second partition granted all the remainder.
  std::sort(chunks.begin(), chunks.end(),
            [](const Chunk& a, const Chunk& b) { return a.fraction > b.fraction; });

  std::vector<GpuletGpu> gpus;
  for (const Chunk& chunk : chunks) {
    bool placed = false;
    for (GpuletGpu& gpu : gpus) {
      if (gpu.partitions.size() != 1) continue;
      const Chunk& first = gpu.partitions.front();
      const double remainder = 1.0 - gpu.granted.front();
      if (remainder < chunk.fraction - 1e-9) continue;
      if (first.spec->id == chunk.spec->id) continue;  // gpulet pairs distinct workloads

      // Predicted feasibility for both, second granted the full remainder.
      const perfmodel::CoRunner second_as_corunner{chunk.traits, remainder};
      const perfmodel::CoRunner first_as_corunner{first.traits, gpu.granted.front()};
      const double first_cap =
          first.spec->slo_latency_ms * options_.internal_latency_factor;
      const double chunk_cap =
          chunk.spec->slo_latency_ms * options_.internal_latency_factor;
      const double first_inflation =
          perfmodel::gpulet_predicted_interference(*first.traits, {&second_as_corunner, 1});
      const double chunk_inflation =
          perfmodel::gpulet_predicted_interference(*chunk.traits, {&first_as_corunner, 1});
      auto first_point = best_partition_point(cache, *first.traits, gpu.granted.front(),
                                              first_cap, first_inflation);
      auto chunk_point =
          best_partition_point(cache, *chunk.traits, remainder, chunk_cap, chunk_inflation);
      if (!first_point.has_value() || first_point->throughput < first.target_rate) continue;
      if (!chunk_point.has_value() || chunk_point->throughput < chunk.target_rate) continue;

      gpu.partitions.push_back(chunk);
      gpu.granted.push_back(remainder);  // all remaining space (internal slack source)
      placed = true;
      break;
    }
    if (!placed) {
      GpuletGpu gpu;
      gpu.partitions.push_back(chunk);
      gpu.granted.push_back(chunk.fraction);
      gpus.push_back(std::move(gpu));
    }
  }

  const auto stop = std::chrono::steady_clock::now();

  // Materialise: ground-truth performance under true interference.
  core::Deployment deployment;
  deployment.framework = name();
  deployment.uses_mig = false;
  deployment.gpu_count = static_cast<int>(gpus.size());
  for (std::size_t gi = 0; gi < gpus.size(); ++gi) {
    const GpuletGpu& gpu = gpus[gi];
    for (std::size_t pi = 0; pi < gpu.partitions.size(); ++pi) {
      const Chunk& chunk = gpu.partitions[pi];
      // A lone partition receives the whole GPU (MPS default quota), and the
      // second of a pair receives all the remainder — gpulet never leaves
      // resources ungranted, trading external fragmentation for slack.
      const double granted = gpu.partitions.size() == 1 ? 1.0 : gpu.granted[pi];

      std::vector<perfmodel::CoRunner> others;
      for (std::size_t qi = 0; qi < gpu.partitions.size(); ++qi) {
        if (qi == pi) continue;
        others.push_back({gpu.partitions[qi].traits, gpu.granted[qi]});
      }
      const double true_inflation = perfmodel::true_interference(*chunk.traits, others);
      const double latency_cap =
          chunk.spec->slo_latency_ms * options_.internal_latency_factor;
      // The deployed process keeps the batch gpulet chose; compute its real
      // behaviour at that batch (which may now exceed the latency cap —
      // that is exactly gpulet's misprediction).
      auto actual = cache.evaluate_mps_share(*chunk.traits, granted, chunk.point.batch, 1,
                                              true_inflation);
      (void)latency_cap;

      core::DeployedUnit unit;
      unit.service_id = chunk.spec->id;
      unit.model = chunk.spec->model;
      unit.gpu_index = static_cast<int>(gi);
      unit.gpc_grant = granted * 7.0;
      unit.batch = chunk.point.batch;
      unit.procs = 1;
      unit.planned_throughput = chunk.target_rate;
      unit.planned_latency_ms = chunk.point.latency_ms;
      if (actual.ok()) {
        unit.actual_throughput = actual.value().throughput;
        unit.actual_latency_ms = actual.value().latency_ms;
        unit.sm_occupancy = actual.value().sm_occupancy;
        unit.memory_gib = actual.value().memory_gib;
      } else {
        unit.actual_throughput = chunk.point.throughput;
        unit.actual_latency_ms = chunk.point.latency_ms;
        unit.sm_occupancy = chunk.point.sm_occupancy;
        unit.memory_gib = chunk.point.memory_gib;
      }
      deployment.units.push_back(std::move(unit));
    }
  }

  core::ScheduleResult result;
  result.deployment = std::move(deployment);
  result.scheduling_delay_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return result;
}

}  // namespace baselines
