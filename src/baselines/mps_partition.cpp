#include "baselines/mps_partition.hpp"

#include <array>

namespace parva::baselines {
namespace {
constexpr std::array<int, 8> kBatchGrid = {1, 2, 4, 8, 16, 32, 64, 128};

// The search logic is shared between the direct model and the memoizing
// wrapper; both expose the same evaluate_mps_share contract and return
// identical values for identical arguments.
template <typename Model>
std::optional<PartitionPoint> best_point_impl(const Model& perf,
                                              const perfmodel::WorkloadTraits& traits,
                                              double gpu_fraction, double latency_cap_ms,
                                              double interference_inflation) {
  std::optional<PartitionPoint> best;
  for (int batch : kBatchGrid) {
    auto result =
        perf.evaluate_mps_share(traits, gpu_fraction, batch, 1, interference_inflation);
    if (!result.ok()) continue;  // OOM at this batch
    const perfmodel::PerfPoint& point = result.value();
    if (point.latency_ms > latency_cap_ms) continue;
    if (!best.has_value() || point.throughput > best->throughput) {
      best = PartitionPoint{gpu_fraction, batch,          point.throughput,
                            point.latency_ms, point.sm_occupancy, point.memory_gib};
    }
  }
  return best;
}

template <typename Model>
std::optional<PartitionPoint> smallest_fraction_impl(const Model& perf,
                                                     const perfmodel::WorkloadTraits& traits,
                                                     double target_throughput,
                                                     double latency_cap_ms, double quantum,
                                                     double interference_inflation) {
  const int steps = static_cast<int>(1.0 / quantum + 0.5);
  for (int i = 1; i <= steps; ++i) {
    const double fraction = quantum * static_cast<double>(i);
    auto point =
        best_point_impl(perf, traits, fraction, latency_cap_ms, interference_inflation);
    if (point.has_value() && point->throughput >= target_throughput) return point;
  }
  return std::nullopt;
}

}  // namespace

std::optional<PartitionPoint> best_partition_point(const perfmodel::AnalyticalPerfModel& perf,
                                                   const perfmodel::WorkloadTraits& traits,
                                                   double gpu_fraction, double latency_cap_ms,
                                                   double interference_inflation) {
  return best_point_impl(perf, traits, gpu_fraction, latency_cap_ms, interference_inflation);
}

std::optional<PartitionPoint> best_partition_point(const perfmodel::CachedPerfModel& perf,
                                                   const perfmodel::WorkloadTraits& traits,
                                                   double gpu_fraction, double latency_cap_ms,
                                                   double interference_inflation) {
  return best_point_impl(perf, traits, gpu_fraction, latency_cap_ms, interference_inflation);
}

std::optional<PartitionPoint> smallest_fraction_for_rate(
    const perfmodel::AnalyticalPerfModel& perf, const perfmodel::WorkloadTraits& traits,
    double target_throughput, double latency_cap_ms, double quantum,
    double interference_inflation) {
  return smallest_fraction_impl(perf, traits, target_throughput, latency_cap_ms, quantum,
                                interference_inflation);
}

std::optional<PartitionPoint> smallest_fraction_for_rate(
    const perfmodel::CachedPerfModel& perf, const perfmodel::WorkloadTraits& traits,
    double target_throughput, double latency_cap_ms, double quantum,
    double interference_inflation) {
  return smallest_fraction_impl(perf, traits, target_throughput, latency_cap_ms, quantum,
                                interference_inflation);
}

}  // namespace parva::baselines
