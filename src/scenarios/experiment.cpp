#include "scenarios/experiment.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "baselines/gpulet.hpp"
#include "baselines/igniter.hpp"
#include "baselines/mig_serving.hpp"
#include "core/metrics.hpp"
#include "core/parvagpu.hpp"
#include "gpu/arch.hpp"
#include "profiler/profiler.hpp"
#include "serving/sim_runner.hpp"

namespace parva::scenarios {

std::string framework_name(Framework framework) {
  switch (framework) {
    case Framework::kGpulet: return "gpulet";
    case Framework::kIgniter: return "iGniter";
    case Framework::kMigServing: return "MIG-serving";
    case Framework::kParvaGpu: return "ParvaGPU";
    case Framework::kParvaGpuSingle: return "ParvaGPU-single";
    case Framework::kParvaGpuUnoptimized: return "ParvaGPU-unoptimized";
  }
  return "unknown";
}

std::vector<Framework> headline_frameworks() {
  return {Framework::kGpulet, Framework::kIgniter, Framework::kMigServing,
          Framework::kParvaGpu};
}

std::vector<Framework> all_frameworks() {
  return {Framework::kGpulet,   Framework::kIgniter,        Framework::kMigServing,
          Framework::kParvaGpu, Framework::kParvaGpuSingle, Framework::kParvaGpuUnoptimized};
}

ExperimentContext ExperimentContext::create() {
  ExperimentContext context;
  context.perf_ = std::make_unique<perfmodel::AnalyticalPerfModel>(
      perfmodel::ModelCatalog::builtin());
  profiler::Profiler profiler(*context.perf_);
  context.profiles_ = profiler.profile_all(perfmodel::ModelCatalog::builtin().names());
  context.surfaces_ = profiler::ProfileSurfaceSet(context.profiles_);
  context.pool_ = std::make_unique<ThreadPool>();
  return context;
}

std::unique_ptr<core::Scheduler> ExperimentContext::make_scheduler(Framework framework) const {
  switch (framework) {
    case Framework::kGpulet:
      return std::make_unique<baselines::GpuletScheduler>(*perf_);
    case Framework::kIgniter:
      return std::make_unique<baselines::IgniterScheduler>(*perf_);
    case Framework::kMigServing:
      return std::make_unique<baselines::MigServingScheduler>(profiles_);
    case Framework::kParvaGpu: {
      core::ParvaGpuOptions options;
      options.pool = pool_.get();
      return std::make_unique<core::ParvaGpuScheduler>(profiles_, options);
    }
    case Framework::kParvaGpuSingle: {
      core::ParvaGpuOptions options;
      options.use_mps = false;
      options.pool = pool_.get();
      return std::make_unique<core::ParvaGpuScheduler>(profiles_, options);
    }
    case Framework::kParvaGpuUnoptimized: {
      core::ParvaGpuOptions options;
      options.optimize_allocation = false;
      options.pool = pool_.get();
      return std::make_unique<core::ParvaGpuScheduler>(profiles_, options);
    }
  }
  throw std::logic_error("unknown framework");
}

namespace {

/// Fragmentation ignoring the trailing partially-filled GPU: the measure of
/// unusable holes the Allocation Optimization targets (a cluster always has
/// a rounding remainder on its last GPU).
double fragmentation_excluding_tail(const core::Deployment& deployment) {
  if (deployment.gpu_count <= 1) return 0.0;
  // Per-GPU granted GPCs.
  std::vector<double> granted(static_cast<std::size_t>(deployment.gpu_count), 0.0);
  for (const core::DeployedUnit& unit : deployment.units) {
    if (unit.gpu_index >= 0 && unit.gpu_index < deployment.gpu_count) {
      granted[static_cast<std::size_t>(unit.gpu_index)] += unit.gpc_grant;
    }
  }
  // The least-filled GPU is the rounding tail; exclude it.
  const auto tail = std::min_element(granted.begin(), granted.end());
  double total = 0.0;
  // parva-audit: allow(R14): summed in fixed vector index order.
  for (double g : granted) total += g;
  total -= *tail;
  const double capacity =
      static_cast<double>(deployment.gpu_count - 1) * gpu::kGpcSlots;
  return capacity <= 0.0 ? 0.0 : std::max(0.0, 1.0 - total / capacity);
}

/// Folds one simulation outcome into an ExperimentResult (shared between
/// the serial path and the seed sweep).
void apply_simulation(ExperimentResult& result, const serving::SimulationResult& sim_result,
                      std::span<const core::ServiceSpec> services) {
  result.ran_simulation = true;
  result.slo_compliance = sim_result.overall_compliance();
  result.worst_service_compliance = sim_result.worst_compliance();
  result.measured_internal_slack = sim_result.internal_slack;
  for (const serving::ServiceOutcome& outcome : sim_result.services) {
    if (outcome.request_latency_ms.empty()) continue;
    for (const core::ServiceSpec& spec : services) {
      if (spec.id != outcome.service_id || spec.slo_latency_ms <= 0.0) continue;
      result.worst_p99_over_slo = std::max(
          result.worst_p99_over_slo,
          outcome.request_latency_ms.p99() / spec.slo_latency_ms);
    }
  }
}

/// Schedules and fills the planning-side metrics; returns the schedule (or
/// nullopt after recording the failure).
std::optional<core::ScheduleResult> schedule_and_measure(const ExperimentContext& context,
                                                         Framework framework,
                                                         const Scenario& scenario,
                                                         ExperimentResult& result) {
  result.framework = framework_name(framework);
  result.scenario = scenario.name;
  auto scheduler = context.make_scheduler(framework);
  auto outcome = scheduler->schedule(scenario.services);
  if (!outcome.ok()) {
    result.feasible = false;
    result.failure = outcome.error().to_string();
    return std::nullopt;
  }
  result.feasible = true;
  core::ScheduleResult& schedule = outcome.value();
  result.scheduling_delay_ms = schedule.scheduling_delay_ms;

  const core::UtilizationMetrics metrics =
      core::compute_metrics(schedule.deployment, scenario.services);
  result.gpu_count = metrics.gpu_count;
  result.internal_slack = metrics.internal_slack;
  result.external_fragmentation = metrics.external_fragmentation;
  result.fragmentation_excl_tail = fragmentation_excluding_tail(schedule.deployment);
  return std::optional<core::ScheduleResult>(std::move(schedule));
}

}  // namespace

ExperimentResult run_experiment(const ExperimentContext& context, Framework framework,
                                const Scenario& scenario, const ExperimentOptions& options) {
  ExperimentResult result;
  auto schedule = schedule_and_measure(context, framework, scenario, result);
  if (!schedule.has_value()) return result;

  if (options.run_simulation) {
    serving::ClusterSimulation sim(schedule->deployment, scenario.services, context.perf());
    apply_simulation(result, sim.run(options.sim), scenario.services);
  }
  return result;
}

std::vector<ExperimentResult> run_experiment_seeds(const ExperimentContext& context,
                                                   Framework framework,
                                                   const Scenario& scenario,
                                                   const ExperimentOptions& base,
                                                   std::span<const std::uint64_t> seeds) {
  ExperimentResult scheduled;
  auto schedule = schedule_and_measure(context, framework, scenario, scheduled);
  if (!schedule.has_value() || seeds.empty() || !base.run_simulation) {
    return {scheduled};
  }

  const std::vector<serving::SimulationResult> sims = serving::run_seeds(
      schedule->deployment, scenario.services, context.perf(), base.sim, seeds,
      context.pool());
  std::vector<ExperimentResult> results;
  results.reserve(sims.size());
  for (const serving::SimulationResult& sim_result : sims) {
    ExperimentResult result = scheduled;  // planning metrics are seed-independent
    apply_simulation(result, sim_result, scenario.services);
    results.push_back(std::move(result));
  }
  return results;
}

}  // namespace parva::scenarios
