// Shared experiment harness: builds schedulers by framework id, runs them
// on a scenario, computes the paper's metrics, and optionally executes the
// deployment in the discrete-event simulator. Every bench binary (one per
// figure) is a thin wrapper over this module.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/deployment.hpp"
#include "perfmodel/analytical_model.hpp"
#include "profiler/profile_surface.hpp"
#include "profiler/profile_types.hpp"
#include "scenarios/scenarios.hpp"
#include "serving/cluster_sim.hpp"

namespace parva::scenarios {

enum class Framework {
  kGpulet,
  kIgniter,
  kMigServing,
  kParvaGpu,
  kParvaGpuSingle,
  kParvaGpuUnoptimized,
};

std::string framework_name(Framework framework);

/// The frameworks of the paper's headline comparison (Fig. 5-9 order).
std::vector<Framework> headline_frameworks();
/// Including the ParvaGPU ablation variants.
std::vector<Framework> all_frameworks();

/// Heavy shared state: the performance model, the one-time profile grid,
/// its indexed query surface, and a thread pool shared by every component
/// that fans out (parallel per-service configuration, seed-sweep
/// simulations).
class ExperimentContext {
 public:
  /// Builds the context for the built-in 11-model catalog.
  static ExperimentContext create();

  const perfmodel::AnalyticalPerfModel& perf() const { return *perf_; }
  const profiler::ProfileSet& profiles() const { return profiles_; }
  /// Indexed surfaces over `profiles()` (built once at create()).
  const profiler::ProfileSurfaceSet& surfaces() const { return surfaces_; }
  ThreadPool& pool() const { return *pool_; }

  /// Fresh scheduler instance for a framework. ParvaGPU variants share the
  /// context's thread pool for parallel configuration.
  std::unique_ptr<core::Scheduler> make_scheduler(Framework framework) const;

 private:
  ExperimentContext() = default;
  std::unique_ptr<perfmodel::AnalyticalPerfModel> perf_;
  profiler::ProfileSet profiles_;
  profiler::ProfileSurfaceSet surfaces_;
  std::unique_ptr<ThreadPool> pool_;
};

struct ExperimentResult {
  std::string framework;
  std::string scenario;
  bool feasible = false;
  std::string failure;

  int gpu_count = 0;
  double internal_slack = 0.0;          ///< analytic (Eq. 3 with modelled activity)
  double external_fragmentation = 0.0;  ///< strict Eq. 4 complement
  double fragmentation_excl_tail = 0.0; ///< ignoring the trailing partial GPU
  double scheduling_delay_ms = 0.0;

  bool ran_simulation = false;
  double slo_compliance = 1.0;          ///< batch-weighted (Fig. 8 metric)
  double worst_service_compliance = 1.0;
  double measured_internal_slack = 0.0; ///< Eq. 3 from DCGM-style counters
  /// max over services of (p99 request latency / SLO): < 1 means every
  /// service has tail headroom.
  double worst_p99_over_slo = 0.0;
};

struct ExperimentOptions {
  bool run_simulation = false;
  serving::SimulationOptions sim;
};

ExperimentResult run_experiment(const ExperimentContext& context, Framework framework,
                                const Scenario& scenario, const ExperimentOptions& options = {});

/// Seed sweep: schedules ONCE, then runs one simulation per seed
/// concurrently on the context's pool. Results are in seed order and each
/// is identical to a serial run_experiment with that seed (the simulator
/// is a pure function of (deployment, options)). If scheduling fails, the
/// single returned entry carries the failure.
std::vector<ExperimentResult> run_experiment_seeds(const ExperimentContext& context,
                                                   Framework framework,
                                                   const Scenario& scenario,
                                                   const ExperimentOptions& base,
                                                   std::span<const std::uint64_t> seeds);

}  // namespace parva::scenarios
