// The paper's Table IV: six evaluation scenarios over eleven DNN inference
// models, each pairing a request rate (requests/s) with an SLO latency (ms),
// plus the fold-scaling used by the model-scalability experiment (Fig. 10/11).
#pragma once

#include <string>
#include <vector>

#include "core/service.hpp"

namespace parva::scenarios {

struct Scenario {
  std::string name;                            ///< "S1".."S6" (plus "S7")
  std::vector<core::ServiceSpec> services;
  /// Streaming-traffic scenario: front ends should default the arrival
  /// process to bursty (ArrivalProcess::kBursty) unless overridden. True
  /// only for S7 — chat/RAG traffic arrives in bursts, and the KV-pressure
  /// dynamics the scenario exists to study only appear under them.
  bool streaming = false;
};

/// All six scenarios, in order S1..S6. Deliberately excludes S7 (the LLM
/// scenario) so Table-IV sweeps stay exactly the paper's evaluation set.
const std::vector<Scenario>& all_scenarios();

/// S7: generative-LLM services (chat / assistant / RAG shapes) carrying
/// core::LlmWorkload token distributions and KV footprints (DESIGN.md
/// §4.7). Pair with ArrivalProcess::kBursty for streaming-traffic studies.
const Scenario& llm_scenario();

/// Lookup by name ("S1".."S6", plus "S7"); throws on unknown name.
const Scenario& scenario(const std::string& name);

/// Replicates every service `fold` times (fresh ids), modelling a client
/// scaling up its service offerings (Section IV-D).
Scenario scale_scenario(const Scenario& base, int fold);

}  // namespace parva::scenarios
