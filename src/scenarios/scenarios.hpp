// The paper's Table IV: six evaluation scenarios over eleven DNN inference
// models, each pairing a request rate (requests/s) with an SLO latency (ms),
// plus the fold-scaling used by the model-scalability experiment (Fig. 10/11).
#pragma once

#include <string>
#include <vector>

#include "core/service.hpp"

namespace parva::scenarios {

struct Scenario {
  std::string name;                            ///< "S1".."S6"
  std::vector<core::ServiceSpec> services;
};

/// All six scenarios, in order S1..S6.
const std::vector<Scenario>& all_scenarios();

/// Lookup by name ("S1".."S6"); throws on unknown name.
const Scenario& scenario(const std::string& name);

/// Replicates every service `fold` times (fresh ids), modelling a client
/// scaling up its service offerings (Section IV-D).
Scenario scale_scenario(const Scenario& base, int fold);

}  // namespace parva::scenarios
