#include "scenarios/scenarios.hpp"

#include "common/error.hpp"

namespace parva::scenarios {
namespace {

struct Row {
  const char* model;
  double rate;
  double slo;
};

Scenario make(const std::string& name, const std::vector<Row>& rows) {
  Scenario scenario;
  scenario.name = name;
  int id = 0;
  for (const Row& row : rows) {
    scenario.services.push_back(core::ServiceSpec{id++, row.model, row.slo, row.rate, {}});
  }
  return scenario;
}

std::vector<Scenario> build_all() {
  std::vector<Scenario> all;
  // Table IV, verbatim. S1 uses six of the eleven models.
  all.push_back(make("S1", {
      {"bert-large", 19, 6434},
      {"densenet-121", 353, 183},
      {"inceptionv3", 460, 419},
      {"mobilenetv2", 677, 167},
      {"resnet-50", 829, 205},
      {"vgg-19", 354, 397},
  }));
  all.push_back(make("S2", {
      {"bert-large", 19, 6434},
      {"densenet-121", 353, 183},
      {"densenet-169", 308, 217},
      {"densenet-201", 276, 169},
      {"inceptionv3", 460, 419},
      {"mobilenetv2", 677, 167},
      {"resnet-101", 393, 212},
      {"resnet-152", 281, 213},
      {"resnet-50", 829, 205},
      {"vgg-16", 410, 400},
      {"vgg-19", 354, 397},
  }));
  all.push_back(make("S3", {
      {"bert-large", 46, 4294},
      {"densenet-121", 728, 126},
      {"densenet-169", 633, 150},
      {"densenet-201", 493, 119},
      {"inceptionv3", 1051, 282},
      {"mobilenetv2", 1546, 113},
      {"resnet-101", 760, 144},
      {"resnet-152", 543, 146},
      {"resnet-50", 1463, 138},
      {"vgg-16", 780, 227},
      {"vgg-19", 673, 265},
  }));
  all.push_back(make("S4", {
      {"bert-large", 69, 4294},
      {"densenet-121", 1091, 126},
      {"densenet-169", 949, 150},
      {"densenet-201", 739, 119},
      {"inceptionv3", 1576, 282},
      {"mobilenetv2", 2318, 113},
      {"resnet-101", 1140, 144},
      {"resnet-152", 815, 146},
      {"resnet-50", 2195, 138},
      {"vgg-16", 1169, 227},
      {"vgg-19", 1010, 265},
  }));
  all.push_back(make("S5", {
      {"bert-large", 843, 2153},
      {"densenet-121", 2228, 69},
      {"densenet-169", 3507, 84},
      {"densenet-201", 1513, 70},
      {"inceptionv3", 3815, 146},
      {"mobilenetv2", 5009, 59},
      {"resnet-101", 1874, 77},
      {"resnet-152", 1340, 80},
      {"resnet-50", 2796, 72},
      {"vgg-16", 1773, 115},
      {"vgg-19", 1531, 134},
  }));
  all.push_back(make("S6", {
      {"bert-large", 1264, 6434},
      {"densenet-121", 3342, 183},
      {"densenet-169", 5260, 217},
      {"densenet-201", 2269, 169},
      {"inceptionv3", 5722, 419},
      {"mobilenetv2", 7513, 167},
      {"resnet-101", 2811, 212},
      {"resnet-152", 2010, 213},
      {"resnet-50", 4196, 205},
      {"vgg-16", 2659, 400},
      {"vgg-19", 2296, 397},
  }));
  return all;
}

/// S7: the generative-LLM scenario (DESIGN.md §4.7). Not part of the
/// paper's Table IV — it lives outside all_scenarios() so every Table-IV
/// sweep and golden stays untouched — but reachable by name from
/// scenario() and `parvactl simulate --scenario S7`. Prompt/generation
/// shapes model three request classes: short chat turns, an assistant with
/// moderate generation, and RAG with long stuffed prompts.
Scenario build_s7() {
  Scenario scenario;
  scenario.name = "S7";
  scenario.streaming = true;
  auto add = [&scenario](int id, const char* model, double slo, double rate,
                         core::LlmWorkload workload) {
    scenario.services.push_back(core::ServiceSpec{id, model, slo, rate, workload});
  };
  // Chat: short prompts, short replies, latency-sensitive.
  add(0, "llama-3b", 4'000, 36, {160.0, 0.6, 2048, 48.0, 0.6, 512, 800.0e3});
  add(1, "llama-7b", 6'000, 20, {220.0, 0.6, 2048, 64.0, 0.6, 512, 1200.0e3});
  // Assistant: mid prompts, heavier generation.
  add(2, "llama-7b", 10'000, 12, {420.0, 0.7, 4096, 180.0, 0.7, 1024, 1450.0e3});
  add(3, "llama-13b", 15'000, 6, {512.0, 0.7, 4096, 220.0, 0.7, 1024, 2100.0e3});
  // RAG: long stuffed prompts dominate; replies stay short.
  add(4, "llama-13b", 20'000, 4, {1600.0, 0.5, 8192, 96.0, 0.6, 512, 2000.0e3});
  return scenario;
}

}  // namespace

const std::vector<Scenario>& all_scenarios() {
  static const std::vector<Scenario> scenarios = build_all();
  return scenarios;
}

const Scenario& llm_scenario() {
  static const Scenario scenario = build_s7();
  return scenario;
}

const Scenario& scenario(const std::string& name) {
  for (const Scenario& s : all_scenarios()) {
    if (s.name == name) return s;
  }
  if (name == llm_scenario().name) return llm_scenario();
  throw std::logic_error("unknown scenario " + name);
}

Scenario scale_scenario(const Scenario& base, int fold) {
  PARVA_REQUIRE(fold >= 1, "fold must be >= 1");
  Scenario scaled;
  scaled.name = base.name + "x" + std::to_string(fold);
  int id = 0;
  for (int f = 0; f < fold; ++f) {
    for (const core::ServiceSpec& spec : base.services) {
      core::ServiceSpec copy = spec;
      copy.id = id++;
      scaled.services.push_back(copy);
    }
  }
  return scaled;
}

}  // namespace parva::scenarios
