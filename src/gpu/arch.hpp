// Architecture constants for the simulated NVIDIA A100-80GB GPU.
//
// The MIG-visible topology is 7 GPC slices (compute) and 8 memory slices of
// 10 GB each; instance profiles couple a GPC count with a fixed memory
// grant, matching the NVIDIA MIG user guide and the paper's Figure 1.
#pragma once

#include <array>
#include <cstdint>

namespace parva::gpu {

/// Number of GPC slots (compute slices) exposed by MIG on A100/H100.
inline constexpr int kGpcSlots = 7;

/// Total streaming multiprocessors on the full A100 die (GA100: 108 SMs,
/// 98 usable under MIG = 7 slices x 14 SMs).
inline constexpr int kSmsPerGpc = 14;
inline constexpr int kSmsPerGpu = kGpcSlots * kSmsPerGpc;

/// Total device memory in GiB (A100-80GB as used on p4de.24xlarge).
inline constexpr double kGpuMemoryGiB = 80.0;

/// MIG memory topology: 8 memory slices of 10 GiB each.
inline constexpr int kMemorySlices = 8;
inline constexpr double kMemorySliceGiB = kGpuMemoryGiB / kMemorySlices;

/// Valid MIG instance sizes in GPCs. 5 and 6 GPC instances do not exist
/// (hardware limitation discussed in Section II-B of the paper).
inline constexpr std::array<int, 5> kInstanceSizes = {1, 2, 3, 4, 7};

/// Memory grant per instance profile in GiB: 1g.10gb, 2g.20gb, 3g.40gb,
/// 4g.40gb, 7g.80gb (paper Section II-B).
constexpr double instance_memory_gib(int gpcs) {
  switch (gpcs) {
    case 1: return 10.0;
    case 2: return 20.0;
    case 3: return 40.0;
    case 4: return 40.0;
    case 7: return 80.0;
    default: return 0.0;
  }
}

/// True when `gpcs` is a legal MIG instance size.
constexpr bool is_valid_instance_size(int gpcs) {
  return gpcs == 1 || gpcs == 2 || gpcs == 3 || gpcs == 4 || gpcs == 7;
}

/// SM count of an instance with the given GPC count.
constexpr int instance_sms(int gpcs) { return gpcs * kSmsPerGpc; }

}  // namespace parva::gpu
