#include "gpu/fault_plan.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace parva::gpu {

std::vector<GpuFailureEvent> FaultPlan::sorted_gpu_failures() const {
  std::vector<GpuFailureEvent> sorted = gpu_failures;
  std::sort(sorted.begin(), sorted.end(),
            [](const GpuFailureEvent& a, const GpuFailureEvent& b) {
              return a.at_ms != b.at_ms ? a.at_ms < b.at_ms : a.gpu_index < b.gpu_index;
            });
  return sorted;
}

double FaultPlan::first_failure_ms() const {
  double first = -1.0;
  for (const GpuFailureEvent& event : gpu_failures) {
    if (first < 0.0 || event.at_ms < first) first = event.at_ms;
  }
  return first;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)), rng_(plan_.seed) {
  PARVA_REQUIRE(plan_.transient_create_failure_prob >= 0.0 &&
                    plan_.transient_create_failure_prob <= 1.0,
                "transient failure probability must be in [0,1]");
  PARVA_REQUIRE(plan_.max_consecutive_transient_failures >= 1,
                "need at least one allowed consecutive failure");
  PARVA_REQUIRE(plan_.slow_reconfig_factor >= 1.0, "slow-reconfig factor must be >= 1");
  PARVA_REQUIRE(plan_.extra_create_latency_ms >= 0.0, "latency injection must be >= 0");
}

bool FaultInjector::next_create_fails() {
  if (plan_.transient_create_failure_prob <= 0.0) return false;
  // Draw unconditionally so the RNG stream (and thus every later decision)
  // does not depend on whether the consecutive-failure cutoff was hit.
  bool fails = rng_.next_double() < plan_.transient_create_failure_prob;
  if (consecutive_failures_ >= plan_.max_consecutive_transient_failures) {
    // The driver has finished its teardown; the instance slot is free again.
    fails = false;
  }
  if (fails) {
    ++consecutive_failures_;
    ++transient_failures_injected_;
  } else {
    consecutive_failures_ = 0;
  }
  return fails;
}

void FaultInjector::reset() {
  rng_.reseed(plan_.seed);
  consecutive_failures_ = 0;
  transient_failures_injected_ = 0;
}

}  // namespace parva::gpu
