// A multi-GPU node/cluster of simulated A100s, mirroring the paper's
// testbed of p4de.24xlarge instances (8 GPUs each, extendable on demand).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "gpu/virtual_gpu.hpp"

namespace parva::gpu {

/// Cluster-wide address of a MIG instance.
struct GlobalInstanceId {
  int gpu = -1;
  InstanceHandle handle = -1;
  bool operator==(const GlobalInstanceId&) const = default;
  auto operator<=>(const GlobalInstanceId&) const = default;
};

class GpuCluster {
 public:
  /// Creates a cluster with `initial_gpus` devices; `elastic` clusters grow
  /// when allocation requests exceed the current device count (modelling
  /// the cloud's ability to add p4de instances).
  explicit GpuCluster(std::size_t initial_gpus = 8, bool elastic = true);

  std::size_t size() const { return gpus_.size(); }
  bool elastic() const { return elastic_; }

  VirtualGpu& gpu(std::size_t index);
  const VirtualGpu& gpu(std::size_t index) const;

  /// Appends one more GPU and returns it (only when elastic).
  [[nodiscard]] Result<std::size_t> add_gpu();

  /// Destroys all instances on all GPUs.
  void reset();

  /// Creates an instance on a specific GPU (growing an elastic cluster if
  /// `gpu_index == size()`).
  [[nodiscard]] Result<GlobalInstanceId> create_instance(std::size_t gpu_index, int gpcs);

  [[nodiscard]] Status destroy_instance(GlobalInstanceId id);
  const MigInstance* find_instance(GlobalInstanceId id) const;

  /// Number of GPUs with at least one instance.
  std::size_t gpus_in_use() const;
  /// Total GPCs allocated across the cluster.
  int total_allocated_gpcs() const;

 private:
  std::vector<std::unique_ptr<VirtualGpu>> gpus_;
  bool elastic_;
};

}  // namespace parva::gpu
