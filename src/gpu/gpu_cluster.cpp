#include "gpu/gpu_cluster.hpp"

namespace parva::gpu {

GpuCluster::GpuCluster(std::size_t initial_gpus, bool elastic) : elastic_(elastic) {
  gpus_.reserve(initial_gpus);
  for (std::size_t i = 0; i < initial_gpus; ++i) {
    gpus_.push_back(std::make_unique<VirtualGpu>(static_cast<int>(i)));
  }
}

VirtualGpu& GpuCluster::gpu(std::size_t index) {
  PARVA_REQUIRE(index < gpus_.size(), "GPU index out of range");
  return *gpus_[index];
}

const VirtualGpu& GpuCluster::gpu(std::size_t index) const {
  PARVA_REQUIRE(index < gpus_.size(), "GPU index out of range");
  return *gpus_[index];
}

Result<std::size_t> GpuCluster::add_gpu() {
  if (!elastic_) {
    return Error(ErrorCode::kCapacityExceeded, "fixed-size cluster cannot grow");
  }
  gpus_.push_back(std::make_unique<VirtualGpu>(static_cast<int>(gpus_.size())));
  return gpus_.size() - 1;
}

void GpuCluster::reset() {
  for (auto& gpu : gpus_) gpu->reset();
}

Result<GlobalInstanceId> GpuCluster::create_instance(std::size_t gpu_index, int gpcs) {
  while (gpu_index >= gpus_.size()) {
    auto grown = add_gpu();
    if (!grown.ok()) return grown.error();
  }
  auto handle = gpus_[gpu_index]->create_instance(gpcs);
  if (!handle.ok()) return handle.error();
  return GlobalInstanceId{static_cast<int>(gpu_index), handle.value()};
}

Status GpuCluster::destroy_instance(GlobalInstanceId id) {
  if (id.gpu < 0 || static_cast<std::size_t>(id.gpu) >= gpus_.size()) {
    return Status(ErrorCode::kNotFound, "no GPU " + std::to_string(id.gpu));
  }
  return gpus_[static_cast<std::size_t>(id.gpu)]->destroy_instance(id.handle);
}

const MigInstance* GpuCluster::find_instance(GlobalInstanceId id) const {
  if (id.gpu < 0 || static_cast<std::size_t>(id.gpu) >= gpus_.size()) return nullptr;
  return gpus_[static_cast<std::size_t>(id.gpu)]->find_instance(id.handle);
}

std::size_t GpuCluster::gpus_in_use() const {
  std::size_t used = 0;
  for (const auto& gpu : gpus_) {
    if (!gpu->empty()) ++used;
  }
  return used;
}

int GpuCluster::total_allocated_gpcs() const {
  int total = 0;
  for (const auto& gpu : gpus_) total += gpu->allocated_gpcs();
  return total;
}

}  // namespace parva::gpu
