// A simulated MIG-capable GPU: tracks instance placements against the slot
// geometry, per-instance memory budgets, and per-instance MPS state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gpu/arch.hpp"
#include "gpu/mig_geometry.hpp"

namespace parva::gpu {

/// Handle to an instance within one GPU. Stable until destroyed.
using InstanceHandle = int;

/// One MPS client process attached to an instance.
struct MpsProcess {
  std::string model;       ///< workload identifier (same-model processes only, per ParvaGPU)
  int batch_size = 1;      ///< batch the process serves
  double memory_gib = 0.0; ///< device-memory footprint of this process
};

/// A provisioned MIG instance (a "GPU segment" once MPS processes attach).
struct MigInstance {
  InstanceHandle handle = -1;
  Placement placement;
  double memory_gib = 0.0;       ///< memory grant of the profile
  double memory_used_gib = 0.0;  ///< sum of attached process footprints
  bool mps_enabled = false;
  std::vector<MpsProcess> processes;

  int gpcs() const { return placement.gpcs; }
  int sms() const { return instance_sms(placement.gpcs); }
};

/// One simulated A100. Enforces the same constraints the real driver does:
/// placements must be geometrically legal and non-overlapping, instance
/// memory cannot be oversubscribed, and MPS processes of different models
/// may not share an instance when homogeneous mode is requested.
class VirtualGpu {
 public:
  explicit VirtualGpu(int id) : id_(id) {}

  int id() const { return id_; }

  /// Creates an instance of `gpcs`, choosing the first preferred slot that
  /// fits. Fails with kUnsupported when no legal slot is free.
  [[nodiscard]] Result<InstanceHandle> create_instance(int gpcs);

  /// Creates an instance at an explicit start slot.
  [[nodiscard]] Result<InstanceHandle> create_instance_at(int gpcs, int start_slot);

  /// Destroys an instance and releases its slots.
  [[nodiscard]] Status destroy_instance(InstanceHandle handle);

  /// Destroys every instance (equivalent to disabling and re-enabling MIG).
  void reset();

  /// Enables MPS on an instance (idempotent).
  [[nodiscard]] Status enable_mps(InstanceHandle handle);

  /// Attaches an MPS client process. Fails with kOutOfMemory when the
  /// instance memory grant would be exceeded, and kInvalidArgument when a
  /// process of a different model is already attached (ParvaGPU runs only
  /// homogeneous processes per segment).
  [[nodiscard]] Status attach_process(InstanceHandle handle, const MpsProcess& process);

  /// Detaches all processes from an instance.
  [[nodiscard]] Status detach_all_processes(InstanceHandle handle);

  bool can_fit(int gpcs) const { return find_start_slot(occupied_mask_, gpcs).has_value(); }
  std::uint8_t occupied_mask() const { return occupied_mask_; }

  /// GPCs allocated to instances (a 3-GPC instance at slot 0 counts 3 even
  /// though it blocks 4 slots).
  int allocated_gpcs() const;
  /// Slots currently blocked (allocated or unusable).
  int occupied_slots() const;
  /// Free slots (may be unreachable for large profiles; use can_fit()).
  int free_slots() const { return kGpcSlots - occupied_slots(); }

  bool empty() const { return instances_.empty(); }
  std::size_t instance_count() const { return instances_.size(); }

  const MigInstance* find_instance(InstanceHandle handle) const;
  /// Instances in handle order.
  std::vector<const MigInstance*> instances() const;

  /// Human-readable layout, e.g. "GPU0[3@4(resnet50 x2) 2@0 free:2]".
  std::string to_string() const;

 private:
  int id_;
  int next_handle_ = 0;
  std::uint8_t occupied_mask_ = 0;
  std::map<InstanceHandle, MigInstance> instances_;
};

}  // namespace parva::gpu
