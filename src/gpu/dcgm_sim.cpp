#include "gpu/dcgm_sim.hpp"

namespace parva::gpu {

const char* to_string(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kDeviceLost: return "device_lost";
    case HealthEventKind::kTransientCreateFailure: return "transient_create_failure";
    case HealthEventKind::kSlowReconfig: return "slow_reconfig";
  }
  return "unknown";
}

void DcgmSim::watch(GlobalInstanceId id, int sms) {
  ActivityRecord& record = records_[id];
  record.sms = sms;
}

void DcgmSim::add_busy(GlobalInstanceId id, double busy_sm_ms) {
  const auto it = records_.find(id);
  if (it == records_.end()) return;  // unwatched entities are ignored, as in DCGM
  it->second.busy_sm_ms += busy_sm_ms;
}

void DcgmSim::close_window(double window_ms) {
  for (auto& [id, record] : records_) record.window_ms = window_ms;
}

ActivityRecord DcgmSim::activity(GlobalInstanceId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? ActivityRecord{} : it->second;
}

std::vector<GlobalInstanceId> DcgmSim::watched() const {
  std::vector<GlobalInstanceId> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  return ids;
}

void DcgmSim::record_health_event(HealthEvent event) {
  if (telemetry_ != nullptr) {
    telemetry_->events().record(telemetry::EventKind::kHealthEvent, event.time_ms,
                                event.gpu, /*service_id=*/-1,
                                static_cast<double>(event.xid), event.detail);
    telemetry_->metrics()
        .counter("parva_dcgm_health_events_total", "Health-watch events surfaced",
                 std::string("kind=\"") + to_string(event.kind) + "\"")
        .inc();
  }
  health_events_.push_back(std::move(event));
}

std::vector<HealthEvent> DcgmSim::drain_health_events() {
  std::vector<HealthEvent> drained = std::move(health_events_);
  health_events_.clear();
  return drained;
}

bool DcgmSim::device_unhealthy(int gpu) const {
  for (const HealthEvent& event : health_events_) {
    if (event.gpu == gpu && event.kind == HealthEventKind::kDeviceLost) return true;
  }
  return false;
}

void DcgmSim::clear() {
  records_.clear();
  health_events_.clear();
}

}  // namespace parva::gpu
