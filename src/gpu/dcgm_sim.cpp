#include "gpu/dcgm_sim.hpp"

namespace parva::gpu {

void DcgmSim::watch(GlobalInstanceId id, int sms) {
  ActivityRecord& record = records_[id];
  record.sms = sms;
}

void DcgmSim::add_busy(GlobalInstanceId id, double busy_sm_ms) {
  const auto it = records_.find(id);
  if (it == records_.end()) return;  // unwatched entities are ignored, as in DCGM
  it->second.busy_sm_ms += busy_sm_ms;
}

void DcgmSim::close_window(double window_ms) {
  for (auto& [id, record] : records_) record.window_ms = window_ms;
}

ActivityRecord DcgmSim::activity(GlobalInstanceId id) const {
  const auto it = records_.find(id);
  return it == records_.end() ? ActivityRecord{} : it->second;
}

std::vector<GlobalInstanceId> DcgmSim::watched() const {
  std::vector<GlobalInstanceId> ids;
  ids.reserve(records_.size());
  for (const auto& [id, record] : records_) ids.push_back(id);
  return ids;
}

void DcgmSim::clear() { records_.clear(); }

}  // namespace parva::gpu
