// MIG placement geometry for the A100: which instance profiles may start at
// which GPC slot, which slots each placement occupies, and enumeration of
// the 19 legal full-GPU configurations of the paper's Figure 1.
//
// Placement rules (matching the hardware and Section III-E1):
//   * 7 GPC instances start at slot 0 and occupy all slots.
//   * 4 GPC instances start at slot 0 and occupy slots 0-3.
//   * 3 GPC instances start at slot 0 (occupying slots 0-3: the fourth slot
//     is blocked by the memory-slice span, which is why the paper avoids
//     placing size-3 segments at slot 0) or at slot 4 (occupying 4-6).
//   * 2 GPC instances start at even slots 0, 2, or 4 (memory alignment).
//   * 1 GPC instances start at any slot 0-6.
//
// The geometry is data, not code: kProfileTable (the 5 A100 instance
// profiles) and kPlacementTable (their 14 legal placements) are constexpr
// tables, and every Figure 1 invariant -- placements fit the 7-slot die,
// slot masks are consistent with spans, the 3@0 memory-span exception,
// per-profile memory grants within the 8 memory slices, no two placements
// of the same profile overlapping -- is discharged by static_assert at
// compile time. Runtime placement code (and parva_audit rule R8 enforces
// this) consults these tables instead of re-hardcoding slot lists.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gpu/arch.hpp"

namespace parva::gpu {

/// A concrete placement: instance size plus start slot.
struct Placement {
  int gpcs = 0;       ///< instance size in GPCs (1,2,3,4,7)
  int start_slot = 0; ///< first GPC slot occupied

  /// Number of consecutive slots this placement makes unavailable.
  /// Equals `gpcs` except for a 3-GPC instance at slot 0, which blocks
  /// slots 0-3 (span 4) due to its memory-slice footprint.
  constexpr int span() const { return (gpcs == 3 && start_slot == 0) ? 4 : gpcs; }

  /// Bitmask over the 7 slots this placement occupies.
  constexpr std::uint8_t slot_mask() const {
    return static_cast<std::uint8_t>(((1u << span()) - 1u) << start_slot);
  }

  bool operator==(const Placement&) const = default;
  auto operator<=>(const Placement&) const = default;
};

/// One A100 MIG instance profile (a row of the paper's Figure 1 legend).
struct ProfileSpec {
  int gpcs = 0;             ///< compute slices (profile size)
  int memory_slices = 0;    ///< memory slices granted (of kMemorySlices)
  double memory_gib = 0.0;  ///< memory grant, memory_slices * kMemorySliceGiB
  int placement_count = 0;  ///< legal placements of this profile (rows below)
};

/// One legal placement of a profile, with its derived footprint.
struct PlacementSpec {
  int gpcs = 0;
  int start_slot = 0;
  int span = 0;                ///< consecutive slots blocked (3@0 blocks 4)
  std::uint8_t slot_mask = 0;  ///< bits over the 7 GPC slots
};

/// The 5 A100 instance profiles: 1g.10gb, 2g.20gb, 3g.40gb, 4g.40gb,
/// 7g.80gb (paper Section II-B).
inline constexpr std::array<ProfileSpec, 5> kProfileTable = {{
    {1, 1, 10.0, 7},
    {2, 2, 20.0, 3},
    {3, 4, 40.0, 2},
    {4, 4, 40.0, 1},
    {7, 8, 80.0, 1},
}};

/// The 14 legal placements, grouped by profile, start slots ascending.
/// 5 profiles + 14 placements are the 19 geometry facts behind Figure 1.
inline constexpr std::array<PlacementSpec, 14> kPlacementTable = {{
    {1, 0, 1, 0x01}, {1, 1, 1, 0x02}, {1, 2, 1, 0x04}, {1, 3, 1, 0x08},
    {1, 4, 1, 0x10}, {1, 5, 1, 0x20}, {1, 6, 1, 0x40},
    {2, 0, 2, 0x03}, {2, 2, 2, 0x0c}, {2, 4, 2, 0x30},
    {3, 0, 4, 0x0f}, {3, 4, 3, 0x70},
    {4, 0, 4, 0x0f},
    {7, 0, 7, 0x7f},
}};

namespace detail {

// Start-slot views over kPlacementTable, in hardware order. Proved below to
// agree row-for-row with the placement table.
inline constexpr std::array<int, 1> kStarts7 = {0};
inline constexpr std::array<int, 1> kStarts4 = {0};
inline constexpr std::array<int, 2> kStarts3 = {0, 4};
inline constexpr std::array<int, 3> kStarts2 = {0, 2, 4};
inline constexpr std::array<int, 7> kStarts1 = {0, 1, 2, 3, 4, 5, 6};

// Preference order of Section III-E1: slot choices that keep space open for
// the high-demand sizes. Size 3 uses slot 4 ONLY: a 3-GPC instance at slot
// 0 blocks slot 3 through its memory-slice span (configurations 5-7 of
// Figure 1), "which can cause significant external fragmentation across
// multiple GPUs" — the allocator therefore declines 3@0 and leaves such
// GPUs to the Allocation Optimization stage, which re-expresses their
// segments into sizes 1-2 and consolidates. Size 2 prefers 0 then 2,
// leaving the right block for size 3; size 1 fills the left block 0-3
// before spilling into 4-6.
inline constexpr std::array<int, 1> kPref3 = {4};
inline constexpr std::array<int, 3> kPref2 = {0, 2, 4};
inline constexpr std::array<int, 7> kPref1 = {0, 1, 2, 3, 4, 5, 6};

}  // namespace detail

/// Start slots at which an instance of `gpcs` may legally begin, in
/// hardware order (not preference order). Empty for invalid sizes.
constexpr std::span<const int> legal_start_slots(int gpcs) {
  switch (gpcs) {
    case 7: return detail::kStarts7;
    case 4: return detail::kStarts4;
    case 3: return detail::kStarts3;
    case 2: return detail::kStarts2;
    case 1: return detail::kStarts1;
    default: return {};
  }
}

/// Start slots in the *preference order* of Section III-E1: the order that
/// minimises external fragmentation (e.g. size 3 prefers slot 4 over 0;
/// size 2 prefers slots 0/2 over 4; size 1 prefers 0-3 before 4-6).
constexpr std::span<const int> preferred_start_slots(int gpcs) {
  switch (gpcs) {
    case 7: return detail::kStarts7;
    case 4: return detail::kStarts4;
    case 3: return detail::kPref3;
    case 2: return detail::kPref2;
    case 1: return detail::kPref1;
    default: return {};
  }
}

/// The profile row for an instance size, or nullptr for invalid sizes.
constexpr const ProfileSpec* find_profile(int gpcs) {
  for (const ProfileSpec& profile : kProfileTable) {
    if (profile.gpcs == gpcs) return &profile;
  }
  return nullptr;
}

/// Validates a single placement in isolation: true exactly when the
/// placement is a row of kPlacementTable.
constexpr bool is_legal_placement(const Placement& placement) {
  for (const PlacementSpec& spec : kPlacementTable) {
    if (spec.gpcs == placement.gpcs && spec.start_slot == placement.start_slot) {
      return true;
    }
  }
  return false;
}

/// Given the current slot occupancy mask, returns the first preferred start
/// slot at which an instance of `gpcs` fits, or nullopt.
constexpr std::optional<int> find_start_slot(std::uint8_t occupied_mask, int gpcs) {
  for (int start : preferred_start_slots(gpcs)) {
    const Placement candidate{gpcs, start};
    if (candidate.start_slot + candidate.span() > kGpcSlots) continue;
    if ((occupied_mask & candidate.slot_mask()) == 0) return start;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Compile-time proofs of the Figure 1 invariants. Each proof is a constexpr
// predicate over the tables, discharged by static_assert: geometry bugs are
// build breaks, not runtime surprises.
// ---------------------------------------------------------------------------

namespace proof {

/// Every placement fits the 7-slot die: start >= 0, span >= 1,
/// start + span <= kGpcSlots (GPC sums never exceed 7).
constexpr bool placements_fit_die() {
  for (const PlacementSpec& p : kPlacementTable) {
    if (p.start_slot < 0 || p.span < 1) return false;
    if (p.start_slot + p.span > kGpcSlots) return false;
  }
  return true;
}

/// Stored slot masks equal the span window, and agree with Placement's own
/// mask arithmetic.
constexpr bool masks_consistent() {
  for (const PlacementSpec& p : kPlacementTable) {
    const auto expected =
        static_cast<std::uint8_t>(((1u << p.span) - 1u) << p.start_slot);
    if (p.slot_mask != expected) return false;
    if (p.slot_mask != Placement{p.gpcs, p.start_slot}.slot_mask()) return false;
    if (p.span != Placement{p.gpcs, p.start_slot}.span()) return false;
  }
  return true;
}

/// The span rule: span == gpcs except the 3@0 memory-slice exception.
constexpr bool span_rule() {
  for (const PlacementSpec& p : kPlacementTable) {
    const int expected = (p.gpcs == 3 && p.start_slot == 0) ? 4 : p.gpcs;
    if (p.span != expected) return false;
  }
  return true;
}

/// Profile rows are consistent: a legal size, memory grant within the 8
/// memory slices and equal to slices * 10 GiB, and placement_count matching
/// the actual number of kPlacementTable rows of that size.
constexpr bool profiles_consistent() {
  int total_placements = 0;
  for (const ProfileSpec& profile : kProfileTable) {
    if (!is_valid_instance_size(profile.gpcs)) return false;
    if (profile.memory_slices < 1 || profile.memory_slices > kMemorySlices) return false;
    if (profile.memory_gib != profile.memory_slices * kMemorySliceGiB) return false;
    if (profile.memory_gib != instance_memory_gib(profile.gpcs)) return false;
    int count = 0;
    for (const PlacementSpec& p : kPlacementTable) {
      if (p.gpcs == profile.gpcs) ++count;
    }
    if (count != profile.placement_count) return false;
    total_placements += count;
  }
  // Every placement row belongs to exactly one profile row.
  return total_placements == static_cast<int>(kPlacementTable.size());
}

/// Within each profile the placements are listed with strictly ascending
/// start slots (so there are no duplicates) and are pairwise disjoint: the
/// legal placements of one profile tile the die without overlap.
constexpr bool no_intra_profile_overlap() {
  for (std::size_t i = 0; i < kPlacementTable.size(); ++i) {
    for (std::size_t j = i + 1; j < kPlacementTable.size(); ++j) {
      const PlacementSpec& a = kPlacementTable[i];
      const PlacementSpec& b = kPlacementTable[j];
      if (a.gpcs != b.gpcs) continue;
      if (a.start_slot >= b.start_slot) return false;
      if ((a.slot_mask & b.slot_mask) != 0) return false;
    }
  }
  return true;
}

/// The start-slot views agree row-for-row with kPlacementTable.
constexpr bool start_slot_views_agree() {
  for (const ProfileSpec& profile : kProfileTable) {
    const std::span<const int> starts = legal_start_slots(profile.gpcs);
    if (static_cast<int>(starts.size()) != profile.placement_count) return false;
    std::size_t next = 0;
    for (const PlacementSpec& p : kPlacementTable) {
      if (p.gpcs != profile.gpcs) continue;
      if (next >= starts.size() || starts[next] != p.start_slot) return false;
      ++next;
    }
    if (next != starts.size()) return false;
    // Preferred order is a permutation of the legal starts.
    const std::span<const int> preferred = preferred_start_slots(profile.gpcs);
    for (const int start : preferred) {
      if (!is_legal_placement({profile.gpcs, start})) return false;
    }
    if (preferred.size() > starts.size()) return false;
  }
  return true;
}

}  // namespace proof

static_assert(proof::placements_fit_die(),
              "MIG geometry: a placement exceeds the 7 GPC slots");
static_assert(proof::masks_consistent(),
              "MIG geometry: a stored slot mask disagrees with its span window");
static_assert(proof::span_rule(),
              "MIG geometry: span must equal gpcs except the 3@0 exception");
static_assert(proof::profiles_consistent(),
              "MIG geometry: profile memory grants or placement counts are wrong");
static_assert(proof::no_intra_profile_overlap(),
              "MIG geometry: same-profile placements must be disjoint and ascending");
static_assert(proof::start_slot_views_agree(),
              "MIG geometry: start-slot views disagree with kPlacementTable");
static_assert(kProfileTable.size() + kPlacementTable.size() == 19,
              "MIG geometry: the A100 has 5 profiles and 14 placements (Fig. 1)");
static_assert(find_start_slot(0, 3).has_value() && *find_start_slot(0, 3) == 4,
              "MIG geometry: size 3 must prefer slot 4 (Section III-E1)");
static_assert(!find_start_slot(0x7f, 1).has_value(),
              "MIG geometry: a full die admits no further instance");

/// A full-GPU configuration: a set of non-overlapping placements.
struct GpuConfig {
  std::vector<Placement> placements;

  /// Combined slot occupancy mask.
  std::uint8_t slot_mask() const;
  /// Total GPCs allocated (note: a 3@0 placement allocates 3 GPCs while
  /// blocking 4 slots).
  int total_gpcs() const;
  /// True when every placement is legal and none overlap.
  bool valid() const;
  /// True when no further instance (of any size) can be added.
  bool maximal() const;

  std::string to_string() const;
};

/// Enumerates every maximal legal configuration. The result has exactly 19
/// entries, reproducing Figure 1 (verified by tests/gpu/mig_geometry_test).
std::vector<GpuConfig> enumerate_maximal_configs();

/// Enumerates every legal configuration (including non-maximal ones, e.g. a
/// lone 2-GPC instance). Used by the MIG-serving baseline's search.
std::vector<GpuConfig> enumerate_all_configs();

}  // namespace parva::gpu
