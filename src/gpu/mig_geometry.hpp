// MIG placement geometry for the A100: which instance profiles may start at
// which GPC slot, which slots each placement occupies, and enumeration of
// the 19 legal full-GPU configurations of the paper's Figure 1.
//
// Placement rules (matching the hardware and Section III-E1):
//   * 7 GPC instances start at slot 0 and occupy all slots.
//   * 4 GPC instances start at slot 0 and occupy slots 0-3.
//   * 3 GPC instances start at slot 0 (occupying slots 0-3: the fourth slot
//     is blocked by the memory-slice span, which is why the paper avoids
//     placing size-3 segments at slot 0) or at slot 4 (occupying 4-6).
//   * 2 GPC instances start at even slots 0, 2, or 4 (memory alignment).
//   * 1 GPC instances start at any slot 0-6.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "gpu/arch.hpp"

namespace parva::gpu {

/// A concrete placement: instance size plus start slot.
struct Placement {
  int gpcs = 0;       ///< instance size in GPCs (1,2,3,4,7)
  int start_slot = 0; ///< first GPC slot occupied

  /// Number of consecutive slots this placement makes unavailable.
  /// Equals `gpcs` except for a 3-GPC instance at slot 0, which blocks
  /// slots 0-3 (span 4) due to its memory-slice footprint.
  int span() const { return (gpcs == 3 && start_slot == 0) ? 4 : gpcs; }

  /// Bitmask over the 7 slots this placement occupies.
  std::uint8_t slot_mask() const {
    return static_cast<std::uint8_t>(((1u << span()) - 1u) << start_slot);
  }

  bool operator==(const Placement&) const = default;
  auto operator<=>(const Placement&) const = default;
};

/// Start slots at which an instance of `gpcs` may legally begin, in
/// hardware order (not preference order). Empty for invalid sizes.
std::span<const int> legal_start_slots(int gpcs);

/// Start slots in the *preference order* of Section III-E1: the order that
/// minimises external fragmentation (e.g. size 3 prefers slot 4 over 0;
/// size 2 prefers slots 0/2 over 4; size 1 prefers 0-3 before 4-6).
std::span<const int> preferred_start_slots(int gpcs);

/// Validates a single placement in isolation (size legal, start legal,
/// span inside the GPU).
bool is_legal_placement(const Placement& placement);

/// A full-GPU configuration: a set of non-overlapping placements.
struct GpuConfig {
  std::vector<Placement> placements;

  /// Combined slot occupancy mask.
  std::uint8_t slot_mask() const;
  /// Total GPCs allocated (note: a 3@0 placement allocates 3 GPCs while
  /// blocking 4 slots).
  int total_gpcs() const;
  /// True when every placement is legal and none overlap.
  bool valid() const;
  /// True when no further instance (of any size) can be added.
  bool maximal() const;

  std::string to_string() const;
};

/// Enumerates every maximal legal configuration. The result has exactly 19
/// entries, reproducing Figure 1 (verified by tests/gpu/mig_geometry_test).
std::vector<GpuConfig> enumerate_maximal_configs();

/// Enumerates every legal configuration (including non-maximal ones, e.g. a
/// lone 2-GPC instance). Used by the MIG-serving baseline's search.
std::vector<GpuConfig> enumerate_all_configs();

/// Given the current slot occupancy mask, returns the first preferred start
/// slot at which an instance of `gpcs` fits, or nullopt.
std::optional<int> find_start_slot(std::uint8_t occupied_mask, int gpcs);

}  // namespace parva::gpu
