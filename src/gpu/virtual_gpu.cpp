#include "gpu/virtual_gpu.hpp"

#include <algorithm>

namespace parva::gpu {

Result<InstanceHandle> VirtualGpu::create_instance(int gpcs) {
  if (!is_valid_instance_size(gpcs)) {
    return Error(ErrorCode::kInvalidArgument,
                 "invalid instance size " + std::to_string(gpcs) + " GPCs");
  }
  const auto slot = find_start_slot(occupied_mask_, gpcs);
  if (!slot.has_value()) {
    return Error(ErrorCode::kUnsupported,
                 "no legal free slot for a " + std::to_string(gpcs) + "-GPC instance on GPU " +
                     std::to_string(id_));
  }
  return create_instance_at(gpcs, *slot);
}

Result<InstanceHandle> VirtualGpu::create_instance_at(int gpcs, int start_slot) {
  const Placement placement{gpcs, start_slot};
  if (!is_legal_placement(placement)) {
    return Error(ErrorCode::kUnsupported, "illegal placement " + std::to_string(gpcs) + "@" +
                                              std::to_string(start_slot));
  }
  if ((occupied_mask_ & placement.slot_mask()) != 0) {
    return Error(ErrorCode::kUnsupported, "placement overlaps existing instance");
  }
  MigInstance instance;
  instance.handle = next_handle_++;
  instance.placement = placement;
  instance.memory_gib = instance_memory_gib(gpcs);
  occupied_mask_ |= placement.slot_mask();
  const InstanceHandle handle = instance.handle;
  instances_.emplace(handle, std::move(instance));
  return handle;
}

Status VirtualGpu::destroy_instance(InstanceHandle handle) {
  const auto it = instances_.find(handle);
  if (it == instances_.end()) {
    return Status(ErrorCode::kNotFound, "no instance " + std::to_string(handle));
  }
  occupied_mask_ &= static_cast<std::uint8_t>(~it->second.placement.slot_mask());
  instances_.erase(it);
  return Status::Ok();
}

void VirtualGpu::reset() {
  instances_.clear();
  occupied_mask_ = 0;
}

Status VirtualGpu::enable_mps(InstanceHandle handle) {
  const auto it = instances_.find(handle);
  if (it == instances_.end()) {
    return Status(ErrorCode::kNotFound, "no instance " + std::to_string(handle));
  }
  it->second.mps_enabled = true;
  return Status::Ok();
}

Status VirtualGpu::attach_process(InstanceHandle handle, const MpsProcess& process) {
  const auto it = instances_.find(handle);
  if (it == instances_.end()) {
    return Status(ErrorCode::kNotFound, "no instance " + std::to_string(handle));
  }
  MigInstance& instance = it->second;
  if (!instance.processes.empty() && !instance.mps_enabled) {
    return Status(ErrorCode::kUnsupported, "second process requires MPS");
  }
  if (!instance.processes.empty() && instance.processes.front().model != process.model) {
    return Status(ErrorCode::kInvalidArgument,
                  "heterogeneous models in one segment are not allowed (got " + process.model +
                      ", segment runs " + instance.processes.front().model + ")");
  }
  if (instance.memory_used_gib + process.memory_gib > instance.memory_gib) {
    return Status(ErrorCode::kOutOfMemory,
                  "instance memory exceeded: " + std::to_string(instance.memory_used_gib) + "+" +
                      std::to_string(process.memory_gib) + " > " +
                      std::to_string(instance.memory_gib) + " GiB");
  }
  instance.memory_used_gib += process.memory_gib;
  instance.processes.push_back(process);
  return Status::Ok();
}

Status VirtualGpu::detach_all_processes(InstanceHandle handle) {
  const auto it = instances_.find(handle);
  if (it == instances_.end()) {
    return Status(ErrorCode::kNotFound, "no instance " + std::to_string(handle));
  }
  it->second.processes.clear();
  it->second.memory_used_gib = 0.0;
  return Status::Ok();
}

int VirtualGpu::allocated_gpcs() const {
  int total = 0;
  for (const auto& [handle, instance] : instances_) total += instance.gpcs();
  return total;
}

int VirtualGpu::occupied_slots() const {
  int count = 0;
  for (int slot = 0; slot < kGpcSlots; ++slot) {
    if ((occupied_mask_ >> slot) & 1u) ++count;
  }
  return count;
}

const MigInstance* VirtualGpu::find_instance(InstanceHandle handle) const {
  const auto it = instances_.find(handle);
  return it == instances_.end() ? nullptr : &it->second;
}

std::vector<const MigInstance*> VirtualGpu::instances() const {
  std::vector<const MigInstance*> out;
  out.reserve(instances_.size());
  for (const auto& [handle, instance] : instances_) out.push_back(&instance);
  return out;
}

std::string VirtualGpu::to_string() const {
  std::string out = "GPU" + std::to_string(id_) + "[";
  bool first = true;
  for (const auto& [handle, instance] : instances_) {
    if (!first) out += ' ';
    first = false;
    out += std::to_string(instance.gpcs()) + "@" + std::to_string(instance.placement.start_slot);
    if (!instance.processes.empty()) {
      out += "(" + instance.processes.front().model + " x" +
             std::to_string(instance.processes.size()) + ")";
    }
  }
  out += " free:" + std::to_string(free_slots()) + "]";
  return out;
}

}  // namespace parva::gpu
