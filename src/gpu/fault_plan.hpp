// Deterministic fault injection for the simulated control plane.
//
// Cloud fleets lose devices: ECC/XID events drop whole A100s mid-epoch and
// nvmlDeviceCreateGpuInstance intermittently fails with NVML_ERROR_IN_USE
// while the driver finishes tearing down a previous instance. The paper's
// evaluation assumes a healthy fleet; this module makes failure a
// first-class, *reproducible* input so every recovery path can be driven in
// CI. A FaultPlan is pure data (schedule + probabilities + seed); the
// FaultInjector interprets it with its own RNG stream, so two runs with the
// same plan inject byte-identical fault sequences.
//
// Real-hardware mapping (see DESIGN.md "Failure model"):
//   * GpuFailureEvent        <-> XID 79 "GPU has fallen off the bus" /
//                                XID 48 double-bit ECC; surfaced by DCGM
//                                health watches as a fatal device event.
//   * transient create fault <-> NVML_ERROR_IN_USE from
//                                nvmlDeviceCreateGpuInstance /
//                                nvmlGpuInstanceCreateComputeInstance.
//   * slow-reconfig latency  <-> the "milliseconds to a few seconds"
//                                reconfiguration tail of Section III-F.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace parva::gpu {

/// Scheduled whole-device loss at a simulated time (XID-style).
struct GpuFailureEvent {
  double at_ms = 0.0;  ///< simulated time of the failure
  int gpu_index = -1;  ///< device that drops out
  int xid = 79;        ///< NVIDIA XID code (79 = GPU fell off the bus)

  bool operator==(const GpuFailureEvent&) const = default;
};

/// Declarative fault schedule. Deterministic: all randomness derives from
/// `seed`, so a plan replays identically across runs and platforms.
struct FaultPlan {
  std::uint64_t seed = 1234;

  /// Whole-GPU losses, executed by whoever owns the clock (the cluster
  /// simulator mid-run, or a test/bench calling NvmlSim::fail_device).
  std::vector<GpuFailureEvent> gpu_failures;

  /// Probability in [0,1] that one create_gpu_instance /
  /// create_compute_instance call fails transiently (NVML_ERROR_IN_USE).
  double transient_create_failure_prob = 0.0;

  /// Upper bound on back-to-back transient failures of the same retry loop,
  /// mirroring the real driver (IN_USE clears once teardown completes).
  /// Keeping this below the Deployer's max_attempts guarantees retries
  /// always converge, making transient faults invisible in the final
  /// deployment (they only show in retry metrics).
  int max_consecutive_transient_failures = 4;

  /// Additive control-plane latency injected into each successful instance
  /// creation (slow-reconfig tail), in milliseconds.
  double extra_create_latency_ms = 0.0;

  /// Multiplier on control-plane operation latencies (1.0 = nominal).
  double slow_reconfig_factor = 1.0;

  bool has_faults() const {
    return !gpu_failures.empty() || transient_create_failure_prob > 0.0 ||
           extra_create_latency_ms > 0.0 || slow_reconfig_factor != 1.0;
  }

  /// Failures sorted by time (the plan itself may list them in any order).
  std::vector<GpuFailureEvent> sorted_gpu_failures() const;

  /// Earliest scheduled device loss, or a negative time when none.
  double first_failure_ms() const;
};

/// Runtime interpreter of a FaultPlan. Owns the derived RNG stream and the
/// injection counters; one injector instance should drive one control
/// plane so the fault sequence is a pure function of the plan.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Decides whether the next instance-creation call fails transiently.
  /// Deterministic given the plan seed and call sequence; never returns
  /// true more than `max_consecutive_transient_failures` times in a row.
  bool next_create_fails();

  /// Call after a create succeeds (or was not attempted) to close a retry
  /// run; resets the consecutive-failure bound.
  void note_create_succeeded() { consecutive_failures_ = 0; }

  /// Latency to add to one successful create op under the plan's
  /// slow-reconfig injection, given the nominal cost of the op.
  double create_latency_ms(double nominal_ms) const {
    return nominal_ms * (plan_.slow_reconfig_factor - 1.0) + plan_.extra_create_latency_ms;
  }

  int transient_failures_injected() const { return transient_failures_injected_; }

  /// Restarts the injector from the plan seed (for replay tests).
  void reset();

 private:
  FaultPlan plan_;
  Rng rng_;
  int consecutive_failures_ = 0;
  int transient_failures_injected_ = 0;
};

}  // namespace parva::gpu
