// DCGM-shaped SM-activity accounting.
//
// The paper's internal-slack metric (Eq. 3) is computed from DCGM's
// "SM activity" field: the fraction of (SMs x time) an entity kept busy
// during a window. The discrete-event simulator feeds busy intervals into
// this store; metric code queries averaged activity per instance.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gpu/gpu_cluster.hpp"
#include "telemetry/telemetry.hpp"

namespace parva::gpu {

/// Accumulated activity for one MIG instance over an observation window.
struct ActivityRecord {
  double busy_sm_ms = 0.0;   ///< integral of (active SMs x time)
  double window_ms = 0.0;    ///< observation window length
  int sms = 0;               ///< SMs granted to the instance

  /// DCGM SM activity in [0,1]: busy SM-time over granted SM-time.
  double sm_activity() const {
    const double denom = window_ms * static_cast<double>(sms);
    return denom <= 0.0 ? 0.0 : busy_sm_ms / denom;
  }
};

struct GlobalInstanceIdLess {
  bool operator()(const GlobalInstanceId& a, const GlobalInstanceId& b) const {
    return a.gpu != b.gpu ? a.gpu < b.gpu : a.handle < b.handle;
  }
};

/// Health-watch event categories (DCGM_HEALTH_WATCH_* analogues).
enum class HealthEventKind {
  kDeviceLost,             ///< XID-style whole-GPU loss (fatal)
  kTransientCreateFailure, ///< NVML_ERROR_IN_USE on instance creation
  kSlowReconfig,           ///< control-plane latency above the nominal cost
};

const char* to_string(HealthEventKind kind);

/// One health event surfaced by the simulated health watches. The repair
/// path (core/repair.hpp) consumes kDeviceLost events exactly as a
/// production control loop consumes DCGM's fatal XID notifications.
struct HealthEvent {
  double time_ms = 0.0;
  int gpu = -1;
  int xid = 0;  ///< nonzero for device-loss events
  HealthEventKind kind = HealthEventKind::kDeviceLost;
  std::string detail;
};

class DcgmSim {
 public:
  /// Registers an instance for monitoring with its SM grant.
  void watch(GlobalInstanceId id, int sms);

  /// Records `busy_sm_ms` of SM-time consumed within the instance.
  void add_busy(GlobalInstanceId id, double busy_sm_ms);

  /// Closes the observation window at `window_ms` for all instances.
  void close_window(double window_ms);

  /// Returns the record for an instance (zeroes when unknown).
  ActivityRecord activity(GlobalInstanceId id) const;

  /// All watched instances.
  std::vector<GlobalInstanceId> watched() const;

  /// Appends a health event to the watch stream.
  void record_health_event(HealthEvent event);

  /// Observability sink (nullptr = disabled). Health events are mirrored
  /// into it (a kHealthEvent per record plus per-kind counters); the watch
  /// stream itself is identical either way.
  void set_telemetry(telemetry::Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Events recorded so far, in arrival order.
  const std::vector<HealthEvent>& health_events() const { return health_events_; }

  /// Returns and removes all pending events (a control loop's poll).
  std::vector<HealthEvent> drain_health_events();

  /// True when any fatal (device-loss) event is pending for `gpu`.
  bool device_unhealthy(int gpu) const;

  void clear();

 private:
  std::map<GlobalInstanceId, ActivityRecord, GlobalInstanceIdLess> records_;
  std::vector<HealthEvent> health_events_;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace parva::gpu
