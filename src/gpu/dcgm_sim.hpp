// DCGM-shaped SM-activity accounting.
//
// The paper's internal-slack metric (Eq. 3) is computed from DCGM's
// "SM activity" field: the fraction of (SMs x time) an entity kept busy
// during a window. The discrete-event simulator feeds busy intervals into
// this store; metric code queries averaged activity per instance.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gpu/gpu_cluster.hpp"

namespace parva::gpu {

/// Accumulated activity for one MIG instance over an observation window.
struct ActivityRecord {
  double busy_sm_ms = 0.0;   ///< integral of (active SMs x time)
  double window_ms = 0.0;    ///< observation window length
  int sms = 0;               ///< SMs granted to the instance

  /// DCGM SM activity in [0,1]: busy SM-time over granted SM-time.
  double sm_activity() const {
    const double denom = window_ms * static_cast<double>(sms);
    return denom <= 0.0 ? 0.0 : busy_sm_ms / denom;
  }
};

struct GlobalInstanceIdLess {
  bool operator()(const GlobalInstanceId& a, const GlobalInstanceId& b) const {
    return a.gpu != b.gpu ? a.gpu < b.gpu : a.handle < b.handle;
  }
};

class DcgmSim {
 public:
  /// Registers an instance for monitoring with its SM grant.
  void watch(GlobalInstanceId id, int sms);

  /// Records `busy_sm_ms` of SM-time consumed within the instance.
  void add_busy(GlobalInstanceId id, double busy_sm_ms);

  /// Closes the observation window at `window_ms` for all instances.
  void close_window(double window_ms);

  /// Returns the record for an instance (zeroes when unknown).
  ActivityRecord activity(GlobalInstanceId id) const;

  /// All watched instances.
  std::vector<GlobalInstanceId> watched() const;

  void clear();

 private:
  std::map<GlobalInstanceId, ActivityRecord, GlobalInstanceIdLess> records_;
};

}  // namespace parva::gpu
