// NVML-shaped control-plane facade over the simulated cluster.
//
// ParvaGPU's Deployer is written against this interface; on a machine with
// real MIG hardware the same call shapes map 1:1 onto
// nvmlDeviceCreateGpuInstance / nvmlGpuInstanceCreateComputeInstance /
// MPS control commands, making the substitution a link-time swap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/gpu_cluster.hpp"

namespace parva::gpu {

/// NVML-style return codes (subset).
enum class NvmlReturn {
  kSuccess = 0,
  kErrorInvalidArgument,
  kErrorNotFound,
  kErrorInsufficientResources,
  kErrorInsufficientMemory,
  kErrorNotSupported,
};

const char* nvml_error_string(NvmlReturn ret);

/// GPU-instance profile descriptors (mirrors nvmlGpuInstanceProfileInfo_t).
struct GpuInstanceProfileInfo {
  int profile_id = 0;      ///< index into kInstanceSizes
  int gpc_count = 0;       ///< slice count (1,2,3,4,7)
  double memory_gib = 0.0; ///< memory grant
  std::string name;        ///< e.g. "1g.10gb"
};

/// Placement descriptor (mirrors nvmlGpuInstancePlacement_t).
struct GpuInstancePlacementInfo {
  int start = 0;
  int size = 0;  ///< slot span
};

/// The control plane. All mutation of the simulated GPUs performed by the
/// schedulers' deployers flows through this class, so a transcript of calls
/// is available for tests (operation log).
class NvmlSim {
 public:
  explicit NvmlSim(GpuCluster& cluster) : cluster_(&cluster) {}

  unsigned device_count() const { return static_cast<unsigned>(cluster_->size()); }

  /// Supported GI profiles on A100-80GB.
  static std::vector<GpuInstanceProfileInfo> supported_profiles();

  /// Legal placements for a profile on an idle device.
  static std::vector<GpuInstancePlacementInfo> profile_placements(int gpc_count);

  /// Enables MIG mode on a device; destroys existing instances
  /// (matches real-driver semantics where toggling MIG resets the device).
  NvmlReturn set_mig_mode(unsigned device, bool enabled);
  bool mig_mode(unsigned device) const;

  /// Creates a GPU instance of `gpc_count` at the driver-chosen placement.
  NvmlReturn create_gpu_instance(unsigned device, int gpc_count, GlobalInstanceId* out);

  /// Creates a GPU instance at an explicit start slot.
  NvmlReturn create_gpu_instance_with_placement(unsigned device, int gpc_count, int start_slot,
                                                GlobalInstanceId* out);

  NvmlReturn destroy_gpu_instance(GlobalInstanceId id);

  /// Starts an MPS control daemon for an instance (prereq for >1 client).
  NvmlReturn start_mps_daemon(GlobalInstanceId id);

  /// Launches an inference process (MPS client) inside an instance.
  NvmlReturn launch_process(GlobalInstanceId id, const MpsProcess& process);

  /// Tears down all processes in an instance.
  NvmlReturn kill_processes(GlobalInstanceId id);

  /// Number of control-plane operations performed (reconfiguration cost
  /// accounting for the Deployer tests).
  std::size_t operation_count() const { return operations_.size(); }
  const std::vector<std::string>& operation_log() const { return operations_; }
  void clear_operation_log() { operations_.clear(); }

  GpuCluster& cluster() { return *cluster_; }
  const GpuCluster& cluster() const { return *cluster_; }

 private:
  NvmlReturn translate(const Status& status, const std::string& op);

  GpuCluster* cluster_;
  std::vector<bool> mig_enabled_;
  std::vector<std::string> operations_;
};

}  // namespace parva::gpu
