// NVML-shaped control-plane facade over the simulated cluster.
//
// ParvaGPU's Deployer is written against this interface; on a machine with
// real MIG hardware the same call shapes map 1:1 onto
// nvmlDeviceCreateGpuInstance / nvmlGpuInstanceCreateComputeInstance /
// MPS control commands, making the substitution a link-time swap.
//
// Fault injection: an attached FaultInjector (fault_plan.hpp) can make
// instance-creation calls fail transiently (NVML_ERROR_IN_USE) and
// fail_device() drops a whole GPU (NVML_ERROR_GPU_IS_LOST, XID-style).
// An attached DcgmSim receives the corresponding health events, so a
// control loop polling the health watches observes faults exactly as a
// production DCGM consumer would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/fault_plan.hpp"
#include "gpu/gpu_cluster.hpp"
#include "telemetry/telemetry.hpp"

namespace parva::gpu {

class DcgmSim;

/// NVML-style return codes (subset).
enum class [[nodiscard]] NvmlReturn {
  kSuccess = 0,
  kErrorInvalidArgument,
  kErrorNotFound,
  kErrorInsufficientResources,
  kErrorInsufficientMemory,
  kErrorNotSupported,
  kErrorInUse,     ///< NVML_ERROR_IN_USE: transient, retry-able
  kErrorGpuIsLost, ///< NVML_ERROR_GPU_IS_LOST: device dropped (XID)
};

const char* nvml_error_string(NvmlReturn ret);

/// True for errors a caller should retry with backoff (the driver clears
/// them on its own); device loss and geometry errors are not retryable.
bool nvml_is_transient(NvmlReturn ret);

/// GPU-instance profile descriptors (mirrors nvmlGpuInstanceProfileInfo_t).
struct GpuInstanceProfileInfo {
  int profile_id = 0;      ///< index into kInstanceSizes
  int gpc_count = 0;       ///< slice count (1,2,3,4,7)
  double memory_gib = 0.0; ///< memory grant
  std::string name;        ///< e.g. "1g.10gb"
};

/// Placement descriptor (mirrors nvmlGpuInstancePlacement_t).
struct GpuInstancePlacementInfo {
  int start = 0;
  int size = 0;  ///< slot span
};

/// The control plane. All mutation of the simulated GPUs performed by the
/// schedulers' deployers flows through this class, so a transcript of calls
/// is available for tests (operation log).
class NvmlSim {
 public:
  explicit NvmlSim(GpuCluster& cluster) : cluster_(&cluster) {}

  unsigned device_count() const { return static_cast<unsigned>(cluster_->size()); }

  /// Supported GI profiles on A100-80GB.
  static std::vector<GpuInstanceProfileInfo> supported_profiles();

  /// Legal placements for a profile on an idle device.
  static std::vector<GpuInstancePlacementInfo> profile_placements(int gpc_count);

  /// Enables MIG mode on a device; destroys existing instances
  /// (matches real-driver semantics where toggling MIG resets the device).
  [[nodiscard]] NvmlReturn set_mig_mode(unsigned device, bool enabled);
  bool mig_mode(unsigned device) const;

  /// Creates a GPU instance of `gpc_count` at the driver-chosen placement.
  [[nodiscard]] NvmlReturn create_gpu_instance(unsigned device, int gpc_count, GlobalInstanceId* out);

  /// Creates a GPU instance at an explicit start slot.
  [[nodiscard]] NvmlReturn create_gpu_instance_with_placement(unsigned device, int gpc_count, int start_slot,
                                                GlobalInstanceId* out);

  [[nodiscard]] NvmlReturn destroy_gpu_instance(GlobalInstanceId id);

  /// Starts an MPS control daemon for an instance (prereq for >1 client).
  [[nodiscard]] NvmlReturn start_mps_daemon(GlobalInstanceId id);

  /// Launches an inference process (MPS client) inside an instance.
  [[nodiscard]] NvmlReturn launch_process(GlobalInstanceId id, const MpsProcess& process);

  /// Tears down all processes in an instance.
  [[nodiscard]] NvmlReturn kill_processes(GlobalInstanceId id);

  // --- Fault injection ------------------------------------------------

  /// Attaches a fault injector (non-owning; nullptr detaches). Subsequent
  /// instance-creation calls consult it for transient failures.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() { return injector_; }

  /// Attaches a health monitor (non-owning); device losses and injected
  /// faults are surfaced there as HealthEvents.
  void attach_health_monitor(DcgmSim* dcgm) { dcgm_ = dcgm; }

  /// Observability sink (nullptr = disabled). Control-plane operations,
  /// injected faults, and device losses are counted; the operation log and
  /// return codes are identical either way.
  void set_telemetry(telemetry::Telemetry* telemetry) { telemetry_ = telemetry; }

  /// Advances the control plane's notion of simulated time; used only to
  /// stamp health events.
  void set_time_ms(double time_ms) { time_ms_ = time_ms; }
  double time_ms() const { return time_ms_; }

  /// Drops a whole device (XID-style): all its instances are destroyed and
  /// every subsequent operation on it returns kErrorGpuIsLost until
  /// restore_device() (device replacement) is called.
  [[nodiscard]] NvmlReturn fail_device(unsigned device, int xid = 79);

  /// Returns a lost device to service with a clean (instance-free) state,
  /// modelling a hardware replacement or node reboot.
  [[nodiscard]] NvmlReturn restore_device(unsigned device);

  bool device_lost(unsigned device) const;
  std::vector<int> lost_devices() const;

  /// Number of control-plane operations performed (reconfiguration cost
  /// accounting for the Deployer tests).
  std::size_t operation_count() const { return operations_.size(); }
  const std::vector<std::string>& operation_log() const { return operations_; }
  void clear_operation_log() { operations_.clear(); }

  GpuCluster& cluster() { return *cluster_; }
  const GpuCluster& cluster() const { return *cluster_; }

 private:
  [[nodiscard]] NvmlReturn translate(const Status& status, const std::string& op);
  /// Shared precondition for instance creation: device exists, not lost,
  /// and the fault injector does not veto the call.
  [[nodiscard]] NvmlReturn check_create(unsigned device, const std::string& op);
  /// Appends to the operation log and mirrors the count into telemetry.
  void log_op(std::string op);

  GpuCluster* cluster_;
  FaultInjector* injector_ = nullptr;
  DcgmSim* dcgm_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  double time_ms_ = 0.0;
  std::vector<bool> mig_enabled_;
  std::vector<bool> lost_;
  std::vector<std::string> operations_;
};

}  // namespace parva::gpu
