#include "gpu/mig_geometry.hpp"

#include <algorithm>

namespace parva::gpu {

std::uint8_t GpuConfig::slot_mask() const {
  std::uint8_t mask = 0;
  for (const auto& p : placements) mask |= p.slot_mask();
  return mask;
}

int GpuConfig::total_gpcs() const {
  int total = 0;
  for (const auto& p : placements) total += p.gpcs;
  return total;
}

bool GpuConfig::valid() const {
  std::uint8_t mask = 0;
  for (const auto& p : placements) {
    if (!is_legal_placement(p)) return false;
    if ((mask & p.slot_mask()) != 0) return false;  // overlap
    mask |= p.slot_mask();
  }
  return true;
}

bool GpuConfig::maximal() const {
  if (!valid()) return false;
  const std::uint8_t occupied = slot_mask();
  // If any size-1 instance still fits, the config is not maximal; size 1 is
  // the most permissive profile, so checking it suffices.
  return !find_start_slot(occupied, 1).has_value();
}

std::string GpuConfig::to_string() const {
  auto sorted = placements;
  std::sort(sorted.begin(), sorted.end(),
            [](const Placement& a, const Placement& b) { return a.start_slot < b.start_slot; });
  std::string out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) out += '-';
    out += std::to_string(sorted[i].gpcs);
    out += '@';
    out += std::to_string(sorted[i].start_slot);
  }
  return out.empty() ? "empty" : out;
}

namespace {

// Depth-first enumeration over canonically-ordered placements (sorted by
// start slot) so each distinct configuration is produced once.
void enumerate_rec(std::uint8_t occupied, int min_start, std::vector<Placement>& current,
                   std::vector<GpuConfig>& out, bool maximal_only) {
  bool extended = false;
  for (int gpcs : kInstanceSizes) {
    for (int start : legal_start_slots(gpcs)) {
      if (start < min_start) continue;
      const Placement p{gpcs, start};
      if (p.start_slot + p.span() > kGpcSlots) continue;
      if ((occupied & p.slot_mask()) != 0) continue;
      extended = true;
      current.push_back(p);
      enumerate_rec(occupied | p.slot_mask(), start + 1, current, out, maximal_only);
      current.pop_back();
    }
  }
  if (!current.empty() && (!maximal_only || !extended)) {
    // `extended` above only tells us an extension exists at start >= min_start;
    // for maximality we must check the full mask.
    GpuConfig config{current};
    if (!maximal_only || config.maximal()) out.push_back(std::move(config));
  }
}

}  // namespace

std::vector<GpuConfig> enumerate_maximal_configs() {
  std::vector<GpuConfig> out;
  std::vector<Placement> current;
  enumerate_rec(0, 0, current, out, /*maximal_only=*/true);
  // The recursion can report the same maximal config once per leaf path; the
  // canonical ordering prevents duplicates, but deduplicate defensively.
  std::sort(out.begin(), out.end(), [](const GpuConfig& a, const GpuConfig& b) {
    return a.placements < b.placements;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const GpuConfig& a, const GpuConfig& b) {
                          return a.placements == b.placements;
                        }),
            out.end());
  return out;
}

std::vector<GpuConfig> enumerate_all_configs() {
  std::vector<GpuConfig> out;
  std::vector<Placement> current;
  enumerate_rec(0, 0, current, out, /*maximal_only=*/false);
  std::sort(out.begin(), out.end(), [](const GpuConfig& a, const GpuConfig& b) {
    return a.placements < b.placements;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const GpuConfig& a, const GpuConfig& b) {
                          return a.placements == b.placements;
                        }),
            out.end());
  return out;
}

}  // namespace parva::gpu
