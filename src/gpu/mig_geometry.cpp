#include "gpu/mig_geometry.hpp"

#include <algorithm>
#include <functional>
#include <set>

namespace parva::gpu {
namespace {

constexpr std::array<int, 1> kStarts7 = {0};
constexpr std::array<int, 1> kStarts4 = {0};
constexpr std::array<int, 2> kStarts3 = {0, 4};
constexpr std::array<int, 3> kStarts2 = {0, 2, 4};
constexpr std::array<int, 7> kStarts1 = {0, 1, 2, 3, 4, 5, 6};

// Preference order of Section III-E1: slot choices that keep space open for
// the high-demand sizes. Size 3 uses slot 4 ONLY: a 3-GPC instance at slot
// 0 blocks slot 3 through its memory-slice span (configurations 5-7 of
// Figure 1), "which can cause significant external fragmentation across
// multiple GPUs" — the allocator therefore declines 3@0 and leaves such
// GPUs to the Allocation Optimization stage, which re-expresses their
// segments into sizes 1-2 and consolidates. Size 2 prefers 0 then 2,
// leaving the right block for size 3; size 1 fills the left block 0-3
// before spilling into 4-6.
constexpr std::array<int, 1> kPref3 = {4};
constexpr std::array<int, 3> kPref2 = {0, 2, 4};
constexpr std::array<int, 7> kPref1 = {0, 1, 2, 3, 4, 5, 6};

}  // namespace

std::span<const int> legal_start_slots(int gpcs) {
  switch (gpcs) {
    case 7: return kStarts7;
    case 4: return kStarts4;
    case 3: return kStarts3;
    case 2: return kStarts2;
    case 1: return kStarts1;
    default: return {};
  }
}

std::span<const int> preferred_start_slots(int gpcs) {
  switch (gpcs) {
    case 7: return kStarts7;
    case 4: return kStarts4;
    case 3: return kPref3;
    case 2: return kPref2;
    case 1: return kPref1;
    default: return {};
  }
}

bool is_legal_placement(const Placement& placement) {
  const auto starts = legal_start_slots(placement.gpcs);
  if (std::find(starts.begin(), starts.end(), placement.start_slot) == starts.end()) {
    return false;
  }
  return placement.start_slot + placement.span() <= kGpcSlots;
}

std::uint8_t GpuConfig::slot_mask() const {
  std::uint8_t mask = 0;
  for (const auto& p : placements) mask |= p.slot_mask();
  return mask;
}

int GpuConfig::total_gpcs() const {
  int total = 0;
  for (const auto& p : placements) total += p.gpcs;
  return total;
}

bool GpuConfig::valid() const {
  std::uint8_t mask = 0;
  for (const auto& p : placements) {
    if (!is_legal_placement(p)) return false;
    if ((mask & p.slot_mask()) != 0) return false;  // overlap
    mask |= p.slot_mask();
  }
  return true;
}

bool GpuConfig::maximal() const {
  if (!valid()) return false;
  const std::uint8_t occupied = slot_mask();
  // If any size-1 instance still fits, the config is not maximal; size 1 is
  // the most permissive profile, so checking it suffices.
  return !find_start_slot(occupied, 1).has_value();
}

std::string GpuConfig::to_string() const {
  auto sorted = placements;
  std::sort(sorted.begin(), sorted.end(),
            [](const Placement& a, const Placement& b) { return a.start_slot < b.start_slot; });
  std::string out;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) out += '-';
    out += std::to_string(sorted[i].gpcs);
    out += '@';
    out += std::to_string(sorted[i].start_slot);
  }
  return out.empty() ? "empty" : out;
}

std::optional<int> find_start_slot(std::uint8_t occupied_mask, int gpcs) {
  for (int start : preferred_start_slots(gpcs)) {
    const Placement candidate{gpcs, start};
    if (candidate.start_slot + candidate.span() > kGpcSlots) continue;
    if ((occupied_mask & candidate.slot_mask()) == 0) return start;
  }
  return std::nullopt;
}

namespace {

// Depth-first enumeration over canonically-ordered placements (sorted by
// start slot) so each distinct configuration is produced once.
void enumerate_rec(std::uint8_t occupied, int min_start, std::vector<Placement>& current,
                   std::vector<GpuConfig>& out, bool maximal_only) {
  bool extended = false;
  for (int gpcs : kInstanceSizes) {
    for (int start : legal_start_slots(gpcs)) {
      if (start < min_start) continue;
      const Placement p{gpcs, start};
      if (p.start_slot + p.span() > kGpcSlots) continue;
      if ((occupied & p.slot_mask()) != 0) continue;
      extended = true;
      current.push_back(p);
      enumerate_rec(occupied | p.slot_mask(), start + 1, current, out, maximal_only);
      current.pop_back();
    }
  }
  if (!current.empty() && (!maximal_only || !extended)) {
    // `extended` above only tells us an extension exists at start >= min_start;
    // for maximality we must check the full mask.
    GpuConfig config{current};
    if (!maximal_only || config.maximal()) out.push_back(std::move(config));
  }
}

}  // namespace

std::vector<GpuConfig> enumerate_maximal_configs() {
  std::vector<GpuConfig> out;
  std::vector<Placement> current;
  enumerate_rec(0, 0, current, out, /*maximal_only=*/true);
  // The recursion can report the same maximal config once per leaf path; the
  // canonical ordering prevents duplicates, but deduplicate defensively.
  std::sort(out.begin(), out.end(), [](const GpuConfig& a, const GpuConfig& b) {
    return a.placements < b.placements;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const GpuConfig& a, const GpuConfig& b) {
                          return a.placements == b.placements;
                        }),
            out.end());
  return out;
}

std::vector<GpuConfig> enumerate_all_configs() {
  std::vector<GpuConfig> out;
  std::vector<Placement> current;
  enumerate_rec(0, 0, current, out, /*maximal_only=*/false);
  std::sort(out.begin(), out.end(), [](const GpuConfig& a, const GpuConfig& b) {
    return a.placements < b.placements;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const GpuConfig& a, const GpuConfig& b) {
                          return a.placements == b.placements;
                        }),
            out.end());
  return out;
}

}  // namespace parva::gpu
