#include "gpu/nvml_sim.hpp"

#include "common/strings.hpp"
#include "gpu/dcgm_sim.hpp"

namespace parva::gpu {

const char* nvml_error_string(NvmlReturn ret) {
  switch (ret) {
    case NvmlReturn::kSuccess: return "success";
    case NvmlReturn::kErrorInvalidArgument: return "invalid argument";
    case NvmlReturn::kErrorNotFound: return "not found";
    case NvmlReturn::kErrorInsufficientResources: return "insufficient resources";
    case NvmlReturn::kErrorInsufficientMemory: return "insufficient memory";
    case NvmlReturn::kErrorNotSupported: return "not supported";
    case NvmlReturn::kErrorInUse: return "in use";
    case NvmlReturn::kErrorGpuIsLost: return "gpu is lost";
  }
  return "unknown";
}

bool nvml_is_transient(NvmlReturn ret) { return ret == NvmlReturn::kErrorInUse; }

void NvmlSim::log_op(std::string op) {
  operations_.push_back(std::move(op));
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .counter("parva_nvml_operations_total", "Control-plane operations performed")
        .inc();
  }
}

std::vector<GpuInstanceProfileInfo> NvmlSim::supported_profiles() {
  std::vector<GpuInstanceProfileInfo> profiles;
  int id = 0;
  for (const ProfileSpec& spec : kProfileTable) {
    GpuInstanceProfileInfo info;
    info.profile_id = id++;
    info.gpc_count = spec.gpcs;
    info.memory_gib = spec.memory_gib;
    info.name = std::to_string(spec.gpcs) + "g." + format_double(info.memory_gib, 0) + "gb";
    profiles.push_back(std::move(info));
  }
  return profiles;
}

std::vector<GpuInstancePlacementInfo> NvmlSim::profile_placements(int gpc_count) {
  std::vector<GpuInstancePlacementInfo> placements;
  for (int start : legal_start_slots(gpc_count)) {
    const Placement p{gpc_count, start};
    placements.push_back({start, p.span()});
  }
  return placements;
}

NvmlReturn NvmlSim::set_mig_mode(unsigned device, bool enabled) {
  if (device >= cluster_->size()) return NvmlReturn::kErrorNotFound;
  if (device_lost(device)) return NvmlReturn::kErrorGpuIsLost;
  if (mig_enabled_.size() < cluster_->size()) mig_enabled_.resize(cluster_->size(), true);
  mig_enabled_[device] = enabled;
  cluster_->gpu(device).reset();
  log_op("set_mig_mode gpu=" + std::to_string(device) +
                        " enabled=" + (enabled ? "1" : "0"));
  return NvmlReturn::kSuccess;
}

bool NvmlSim::mig_mode(unsigned device) const {
  if (device < mig_enabled_.size()) return mig_enabled_[device];
  return true;  // simulated devices boot with MIG enabled
}

NvmlReturn NvmlSim::fail_device(unsigned device, int xid) {
  if (device >= cluster_->size()) return NvmlReturn::kErrorNotFound;
  if (lost_.size() < cluster_->size()) lost_.resize(cluster_->size(), false);
  lost_[device] = true;
  // The device resets: every instance (and its processes) is gone.
  cluster_->gpu(device).reset();
  log_op("fail_device gpu=" + std::to_string(device) +
                        " xid=" + std::to_string(xid));
  if (telemetry_ != nullptr) {
    telemetry_->metrics()
        .counter("parva_nvml_device_losses_total", "Whole-device (XID) losses executed")
        .inc();
  }
  if (dcgm_ != nullptr) {
    dcgm_->record_health_event(HealthEvent{time_ms_, static_cast<int>(device), xid,
                                           HealthEventKind::kDeviceLost,
                                           "XID " + std::to_string(xid) + ": device lost"});
  }
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlSim::restore_device(unsigned device) {
  if (device >= cluster_->size()) return NvmlReturn::kErrorNotFound;
  if (device < lost_.size()) lost_[device] = false;
  cluster_->gpu(device).reset();
  log_op("restore_device gpu=" + std::to_string(device));
  return NvmlReturn::kSuccess;
}

bool NvmlSim::device_lost(unsigned device) const {
  return device < lost_.size() && lost_[device];
}

std::vector<int> NvmlSim::lost_devices() const {
  std::vector<int> lost;
  for (std::size_t i = 0; i < lost_.size(); ++i) {
    if (lost_[i]) lost.push_back(static_cast<int>(i));
  }
  return lost;
}

NvmlReturn NvmlSim::translate(const Status& status, const std::string& op) {
  log_op(op + (status.ok() ? "" : " FAILED(" + status.to_string() + ")"));
  if (status.ok()) return NvmlReturn::kSuccess;
  switch (status.error().code()) {
    case ErrorCode::kInvalidArgument: return NvmlReturn::kErrorInvalidArgument;
    case ErrorCode::kNotFound: return NvmlReturn::kErrorNotFound;
    case ErrorCode::kOutOfMemory: return NvmlReturn::kErrorInsufficientMemory;
    case ErrorCode::kUnsupported: return NvmlReturn::kErrorInsufficientResources;
    case ErrorCode::kCapacityExceeded: return NvmlReturn::kErrorInsufficientResources;
    case ErrorCode::kInternal: return NvmlReturn::kErrorNotSupported;
  }
  return NvmlReturn::kErrorNotSupported;
}

NvmlReturn NvmlSim::check_create(unsigned device, const std::string& op) {
  if (device_lost(device)) {
    log_op(op + " FAILED(gpu is lost)");
    return NvmlReturn::kErrorGpuIsLost;
  }
  if (injector_ != nullptr && injector_->next_create_fails()) {
    log_op(op + " FAULT(in use)");
    if (telemetry_ != nullptr) {
      telemetry_->metrics()
          .counter("parva_nvml_transient_faults_total",
                   "Injected transient create failures (NVML_ERROR_IN_USE)")
          .inc();
    }
    if (dcgm_ != nullptr) {
      dcgm_->record_health_event(HealthEvent{time_ms_, static_cast<int>(device), 0,
                                             HealthEventKind::kTransientCreateFailure,
                                             "NVML_ERROR_IN_USE injected"});
    }
    return NvmlReturn::kErrorInUse;
  }
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlSim::create_gpu_instance(unsigned device, int gpc_count, GlobalInstanceId* out) {
  const std::string op =
      "create_gi gpu=" + std::to_string(device) + " gpcs=" + std::to_string(gpc_count);
  if (const NvmlReturn vetoed = check_create(device, op); vetoed != NvmlReturn::kSuccess) {
    return vetoed;
  }
  auto result = cluster_->create_instance(device, gpc_count);
  if (!result.ok()) return translate(Status(result.error()), op);
  if (injector_ != nullptr) injector_->note_create_succeeded();
  if (out != nullptr) *out = result.value();
  log_op(op + " handle=" + std::to_string(result.value().handle));
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlSim::create_gpu_instance_with_placement(unsigned device, int gpc_count,
                                                       int start_slot, GlobalInstanceId* out) {
  if (device >= cluster_->size()) return NvmlReturn::kErrorNotFound;
  const std::string op = "create_gi_placed gpu=" + std::to_string(device) +
                         " gpcs=" + std::to_string(gpc_count) + "@" + std::to_string(start_slot);
  if (const NvmlReturn vetoed = check_create(device, op); vetoed != NvmlReturn::kSuccess) {
    return vetoed;
  }
  auto result = cluster_->gpu(device).create_instance_at(gpc_count, start_slot);
  if (!result.ok()) return translate(Status(result.error()), op);
  if (injector_ != nullptr) injector_->note_create_succeeded();
  if (out != nullptr) *out = GlobalInstanceId{static_cast<int>(device), result.value()};
  log_op(op);
  return NvmlReturn::kSuccess;
}

NvmlReturn NvmlSim::destroy_gpu_instance(GlobalInstanceId id) {
  if (id.gpu >= 0 && device_lost(static_cast<unsigned>(id.gpu))) {
    log_op("destroy_gi gpu=" + std::to_string(id.gpu) +
                          " handle=" + std::to_string(id.handle) + " FAILED(gpu is lost)");
    return NvmlReturn::kErrorGpuIsLost;
  }
  return translate(cluster_->destroy_instance(id),
                   "destroy_gi gpu=" + std::to_string(id.gpu) +
                       " handle=" + std::to_string(id.handle));
}

NvmlReturn NvmlSim::start_mps_daemon(GlobalInstanceId id) {
  if (id.gpu < 0 || static_cast<std::size_t>(id.gpu) >= cluster_->size()) {
    return NvmlReturn::kErrorNotFound;
  }
  if (device_lost(static_cast<unsigned>(id.gpu))) return NvmlReturn::kErrorGpuIsLost;
  return translate(cluster_->gpu(static_cast<std::size_t>(id.gpu)).enable_mps(id.handle),
                   "start_mps gpu=" + std::to_string(id.gpu) +
                       " handle=" + std::to_string(id.handle));
}

NvmlReturn NvmlSim::launch_process(GlobalInstanceId id, const MpsProcess& process) {
  if (id.gpu < 0 || static_cast<std::size_t>(id.gpu) >= cluster_->size()) {
    return NvmlReturn::kErrorNotFound;
  }
  if (device_lost(static_cast<unsigned>(id.gpu))) return NvmlReturn::kErrorGpuIsLost;
  return translate(cluster_->gpu(static_cast<std::size_t>(id.gpu)).attach_process(id.handle, process),
                   "launch gpu=" + std::to_string(id.gpu) + " handle=" +
                       std::to_string(id.handle) + " model=" + process.model +
                       " batch=" + std::to_string(process.batch_size));
}

NvmlReturn NvmlSim::kill_processes(GlobalInstanceId id) {
  if (id.gpu < 0 || static_cast<std::size_t>(id.gpu) >= cluster_->size()) {
    return NvmlReturn::kErrorNotFound;
  }
  if (device_lost(static_cast<unsigned>(id.gpu))) return NvmlReturn::kErrorGpuIsLost;
  return translate(
      cluster_->gpu(static_cast<std::size_t>(id.gpu)).detach_all_processes(id.handle),
      "kill gpu=" + std::to_string(id.gpu) + " handle=" + std::to_string(id.handle));
}

}  // namespace parva::gpu
