// Framework-neutral deployment description. Every scheduler (ParvaGPU and
// the baselines) emits a Deployment; the metrics module and the
// discrete-event simulator consume it uniformly.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/service.hpp"
#include "gpu/mig_geometry.hpp"

namespace parva::core {

/// One serving unit: a MIG-backed GPU segment (ParvaGPU, MIG-serving) or an
/// MPS percentage partition (gpulet, iGniter).
struct DeployedUnit {
  int service_id = -1;
  std::string model;
  int gpu_index = -1;

  /// Compute grant in GPC units; fractional for percentage partitions.
  double gpc_grant = 0.0;
  /// Concrete MIG placement when the unit is instance-backed.
  std::optional<gpu::Placement> placement;

  int batch = 1;
  int procs = 1;

  /// The scheduler's belief about this unit (its profile/prediction).
  double planned_throughput = 0.0;
  double planned_latency_ms = 0.0;
  /// Ground truth under the unit's real co-location (equals planned for
  /// MIG-isolated units; inflated by true interference for MPS shares).
  double actual_throughput = 0.0;
  double actual_latency_ms = 0.0;

  /// SM busy fraction the unit achieves at full load (ground truth).
  double sm_occupancy = 0.0;
  double memory_gib = 0.0;

  int granted_sms() const;
};

/// A complete deployment across GPUs.
struct Deployment {
  std::string framework;
  bool uses_mig = false;
  int gpu_count = 0;
  std::vector<DeployedUnit> units;

  double total_granted_gpcs() const;
  std::vector<const DeployedUnit*> units_for_service(int service_id) const;
  /// Aggregate ground-truth capacity of a service across its units.
  double service_capacity(int service_id) const;
};

/// Outcome of one scheduling run.
struct ScheduleResult {
  Deployment deployment;
  double scheduling_delay_ms = 0.0;  ///< measured wall-clock of the algorithm
};

/// Abstract scheduler interface implemented by ParvaGPU, its variants, and
/// every baseline.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  /// Produces a deployment for the services, or an error when the
  /// framework cannot handle the workload (e.g. iGniter at high rates).
  [[nodiscard]] virtual Result<ScheduleResult> schedule(std::span<const ServiceSpec> services) = 0;
};

}  // namespace parva::core
