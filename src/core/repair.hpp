// Self-healing reconfiguration after device loss.
//
// When a GPU drops out (XID/ECC, surfaced as a DcgmSim kDeviceLost health
// event), every segment it hosted disappears and the affected services run
// degraded until the control loop re-places the displaced demand. This
// module implements that loop, treating the failure as a *reconfigurable
// machine scheduling* step (MIG-Serving, arXiv:2109.11067): the surviving
// placements are kept verbatim, only the displaced units are re-created —
// on surviving GPUs when their geometry has room, on a standby device
// otherwise — and the transition is driven through the LiveUpdater so the
// control-plane cost and per-service downtime are accounted exactly as in
// a planned reconfiguration.
//
// Recovery time = detection latency (health-watch polling) + the live
// update's makespan + any retry backoff the Deployer spent on the way.
#pragma once

#include <span>
#include <vector>

#include "core/live_update.hpp"
#include "telemetry/telemetry.hpp"

namespace parva::core {

struct RepairOptions {
  /// Time from the failure until the health watch surfaces it (a DCGM
  /// polling interval; production loops poll at 100 ms - 1 s).
  double detection_latency_ms = 500.0;
  /// How the replacement units come up. kInPlace is the default: the lost
  /// units are already dark, shadowing buys nothing for them.
  UpdateStrategy strategy = UpdateStrategy::kInPlace;

  /// Observability sink (nullptr = disabled). Displacement and repair
  /// completion are mirrored into it; reports are identical either way.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Outcome of one repair pass.
struct RepairReport {
  int lost_gpu = -1;
  int lost_units = 0;
  int replaced_units = 0;
  std::vector<int> affected_services;
  /// Offered-rate capacity (req/s) the failure displaced.
  double displaced_rate = 0.0;
  /// Replacement units created by the repair (subset of `deployment.units`).
  std::vector<DeployedUnit> replacements;
  /// The post-repair deployment: survivors + replacements.
  Deployment deployment;
  /// The live-update transcript of the repair transition.
  LiveUpdateReport update;
  /// Retries/backoff the Deployer spent while re-creating units.
  DeployStats deploy_stats;
  /// End-to-end recovery time: detection + control-plane makespan + backoff.
  double recovery_ms = 0.0;
};

class RepairCoordinator {
 public:
  RepairCoordinator(Deployer& deployer, LiveUpdater& updater, RepairOptions options = {})
      : deployer_(&deployer), updater_(&updater), options_(options) {}

  const RepairOptions& options() const { return options_; }

  /// Indices into `deployment.units` of units whose device the control
  /// plane reports lost.
  std::vector<std::size_t> detect_lost_units(const Deployment& deployment) const;

  /// Handles the loss of `lost_gpu`: drops its units from `current`/`state`
  /// (they are already gone on the hardware), computes replacement
  /// placements on surviving GPUs for the displaced demand, and drives the
  /// LiveUpdater to create them. On success `current` and `state` describe
  /// the repaired deployment.
  [[nodiscard]] Result<RepairReport> handle_gpu_loss(Deployment& current, DeployedState& state,
                                       int lost_gpu);

 private:
  Deployer* deployer_;
  LiveUpdater* updater_;
  RepairOptions options_;
};

}  // namespace parva::core
