// The GPU Segment Configurator (paper Algorithm 1): for every service,
// derive the optimal triplet per instance size (Optimal Triplet Decision)
// and the minimal segment set covering the request rate (Demand Matching).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "core/service.hpp"
#include "profiler/profile_surface.hpp"
#include "profiler/profile_types.hpp"

namespace parva::core {

struct ConfiguratorOptions {
  /// Fraction of the SLO latency usable inside the GPU; the other half is
  /// reserved for request queueing on the server (paper Section IV-A,
  /// following Nexus [12]).
  double internal_latency_factor = 0.5;
  /// Cap on MPS processes considered; 1 reproduces ParvaGPU-single.
  int max_processes = 3;
};

class SegmentConfigurator {
 public:
  explicit SegmentConfigurator(ConfiguratorOptions options = {}) : options_(options) {}

  const ConfiguratorOptions& options() const { return options_; }

  /// Runs TripletDecision for one service: scans the profile grid and keeps
  /// the maximum-throughput point per instance size whose latency fits the
  /// internal bound. Fails with kCapacityExceeded when no instance size can
  /// meet the SLO at all.
  [[nodiscard]] Result<ConfiguredService> triplet_decision(const ServiceSpec& spec,
                                             const profiler::ProfileTable& profile) const;

  /// Fast-path TripletDecision over an indexed surface: one prefix-argmax
  /// lookup per instance size instead of a full table scan. Produces
  /// bit-identical ConfiguredServices to the table overload (differential
  /// coverage in tests/core/configurator_test.cpp).
  [[nodiscard]] Result<ConfiguredService> triplet_decision(const ServiceSpec& spec,
                                             const profiler::ProfileSurface& surface) const;

  /// Runs DemandMatching on a triplet-decided service: selects the
  /// GPC-efficiency-optimal segment (the O(1) argument of Eq. 1-2), counts
  /// whole optimal segments with the floor rule, and picks the smallest
  /// last segment covering the remainder.
  [[nodiscard]] Status demand_matching(ConfiguredService& service) const;

  /// Full Algorithm 1 over a service set (reference scan path).
  [[nodiscard]] Result<std::vector<ConfiguredService>> configure(std::span<const ServiceSpec> services,
                                                   const profiler::ProfileSet& profiles) const;

  /// Full Algorithm 1 over indexed surfaces (the production fast path).
  [[nodiscard]] Result<std::vector<ConfiguredService>> configure(
      std::span<const ServiceSpec> services,
      const profiler::ProfileSurfaceSet& surfaces) const;

  /// Parallel Algorithm 1: services configure independently on the pool,
  /// per-task state merges at the join (no locks; results land in service
  /// order, and the first-in-order error wins exactly as the serial loop's
  /// early return does).
  [[nodiscard]] Result<std::vector<ConfiguredService>> configure(std::span<const ServiceSpec> services,
                                                   const profiler::ProfileSurfaceSet& surfaces,
                                                   ThreadPool& pool) const;

 private:
  [[nodiscard]] Result<ConfiguredService> configure_one(const ServiceSpec& spec,
                                          const profiler::ProfileSurfaceSet& surfaces) const;

  ConfiguratorOptions options_;
};

}  // namespace parva::core
