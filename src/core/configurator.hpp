// The GPU Segment Configurator (paper Algorithm 1): for every service,
// derive the optimal triplet per instance size (Optimal Triplet Decision)
// and the minimal segment set covering the request rate (Demand Matching).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "core/service.hpp"
#include "profiler/profile_types.hpp"

namespace parva::core {

struct ConfiguratorOptions {
  /// Fraction of the SLO latency usable inside the GPU; the other half is
  /// reserved for request queueing on the server (paper Section IV-A,
  /// following Nexus [12]).
  double internal_latency_factor = 0.5;
  /// Cap on MPS processes considered; 1 reproduces ParvaGPU-single.
  int max_processes = 3;
};

class SegmentConfigurator {
 public:
  explicit SegmentConfigurator(ConfiguratorOptions options = {}) : options_(options) {}

  const ConfiguratorOptions& options() const { return options_; }

  /// Runs TripletDecision for one service: scans the profile grid and keeps
  /// the maximum-throughput point per instance size whose latency fits the
  /// internal bound. Fails with kCapacityExceeded when no instance size can
  /// meet the SLO at all.
  Result<ConfiguredService> triplet_decision(const ServiceSpec& spec,
                                             const profiler::ProfileTable& profile) const;

  /// Runs DemandMatching on a triplet-decided service: selects the
  /// GPC-efficiency-optimal segment (the O(1) argument of Eq. 1-2), counts
  /// whole optimal segments with the floor rule, and picks the smallest
  /// last segment covering the remainder.
  Status demand_matching(ConfiguredService& service) const;

  /// Full Algorithm 1 over a service set.
  Result<std::vector<ConfiguredService>> configure(std::span<const ServiceSpec> services,
                                                   const profiler::ProfileSet& profiles) const;

 private:
  ConfiguratorOptions options_;
};

}  // namespace parva::core
