#include "core/deployment.hpp"

#include <cmath>

#include "gpu/arch.hpp"

namespace parva::core {

int DeployedUnit::granted_sms() const {
  return static_cast<int>(std::lround(gpc_grant * gpu::kSmsPerGpc));
}

double Deployment::total_granted_gpcs() const {
  double total = 0.0;
  // parva-audit: allow(R14): summed in fixed vector index order.
  for (const auto& unit : units) total += unit.gpc_grant;
  return total;
}

std::vector<const DeployedUnit*> Deployment::units_for_service(int service_id) const {
  std::vector<const DeployedUnit*> out;
  for (const auto& unit : units) {
    if (unit.service_id == service_id) out.push_back(&unit);
  }
  return out;
}

double Deployment::service_capacity(int service_id) const {
  double total = 0.0;
  for (const auto& unit : units) {
    // parva-audit: allow(R14): summed in fixed vector index order.
    if (unit.service_id == service_id) total += unit.actual_throughput;
  }
  return total;
}

}  // namespace parva::core
