#include "core/plan.hpp"

#include "common/error.hpp"

namespace parva::core {

int GpuPlan::allocated_gpcs() const {
  int total = 0;
  for (const auto& segment : segments_) total += segment.triplet.gpcs;
  return total;
}

int GpuPlan::occupied_slots() const {
  int count = 0;
  for (int slot = 0; slot < gpu::kGpcSlots; ++slot) {
    if ((occupied_mask_ >> slot) & 1u) ++count;
  }
  return count;
}

bool GpuPlan::try_place(int service_id, const Triplet& triplet) {
  const auto start = gpu::find_start_slot(occupied_mask_, triplet.gpcs);
  if (!start.has_value()) return false;
  PlacedSegment placed;
  placed.service_id = service_id;
  placed.triplet = triplet;
  placed.placement = gpu::Placement{triplet.gpcs, *start};
  occupied_mask_ |= placed.placement.slot_mask();
  segments_.push_back(placed);
  return true;
}

bool GpuPlan::try_place_at(int service_id, const Triplet& triplet, int start_slot) {
  const gpu::Placement placement{triplet.gpcs, start_slot};
  if (!gpu::is_legal_placement(placement)) return false;
  if ((occupied_mask_ & placement.slot_mask()) != 0) return false;
  PlacedSegment placed;
  placed.service_id = service_id;
  placed.triplet = triplet;
  placed.placement = placement;
  occupied_mask_ |= placement.slot_mask();
  segments_.push_back(placed);
  return true;
}

PlacedSegment GpuPlan::remove_segment(std::size_t index) {
  PARVA_REQUIRE(index < segments_.size(), "segment index out of range");
  PlacedSegment removed = segments_[index];
  occupied_mask_ &= static_cast<std::uint8_t>(~removed.placement.slot_mask());
  segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(index));
  return removed;
}

std::string GpuPlan::to_string() const {
  std::string out = "GPU" + std::to_string(id_) + "{";
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (i != 0) out += ' ';
    out += 's';
    out += std::to_string(segments_[i].service_id);
    out += ':';
    out += std::to_string(segments_[i].triplet.gpcs);
    out += '@';
    out += std::to_string(segments_[i].placement.start_slot);
  }
  out += "}";
  return out;
}

std::size_t DeploymentPlan::place_first_fit(int service_id, const Triplet& triplet) {
  for (std::size_t i = 0; i < gpus_.size(); ++i) {
    if (gpus_[i].try_place(service_id, triplet)) return i;
  }
  gpus_.emplace_back(static_cast<int>(gpus_.size()));
  const bool placed = gpus_.back().try_place(service_id, triplet);
  PARVA_CHECK(placed, "fresh GPU must fit any single segment");
  return gpus_.size() - 1;
}

void DeploymentPlan::compact() {
  std::vector<GpuPlan> kept;
  kept.reserve(gpus_.size());
  for (auto& gpu : gpus_) {
    if (!gpu.empty()) kept.push_back(std::move(gpu));
  }
  for (std::size_t i = 0; i < kept.size(); ++i) kept[i].set_id(static_cast<int>(i));
  gpus_ = std::move(kept);
}

int DeploymentPlan::total_allocated_gpcs() const {
  int total = 0;
  for (const auto& gpu : gpus_) total += gpu.allocated_gpcs();
  return total;
}

std::size_t DeploymentPlan::gpus_in_use() const {
  std::size_t used = 0;
  for (const auto& gpu : gpus_) {
    if (!gpu.empty()) ++used;
  }
  return used;
}

std::vector<std::pair<std::size_t, const PlacedSegment*>> DeploymentPlan::all_segments() const {
  std::vector<std::pair<std::size_t, const PlacedSegment*>> out;
  for (std::size_t i = 0; i < gpus_.size(); ++i) {
    for (const auto& segment : gpus_[i].segments()) out.emplace_back(i, &segment);
  }
  return out;
}

std::string DeploymentPlan::to_string() const {
  std::string out;
  for (const auto& gpu : gpus_) {
    if (!out.empty()) out += ' ';
    out += gpu.to_string();
  }
  return out.empty() ? "empty-plan" : out;
}

}  // namespace parva::core
