#include "core/reconfigure.hpp"

#include <algorithm>
#include <string>

namespace parva::core {

Result<ReconfigureStats> Reconfigurer::update_service(
    DeploymentPlan& plan, std::vector<ConfiguredService>& configured,
    const ServiceSpec& updated_spec, const profiler::ProfileSet& profiles) const {
  const profiler::ProfileTable* table = profiles.find(updated_spec.model);
  if (table == nullptr) {
    return Error(ErrorCode::kNotFound, "no profile for model " + updated_spec.model);
  }

  // Re-profiling is unnecessary (Section III-F): the Configurator
  // reconstructs the optimal segments from the existing profile data.
  auto reconfigured = configurator_.triplet_decision(updated_spec, *table);
  if (!reconfigured.ok()) return reconfigured.error();
  ConfiguredService service = std::move(reconfigured).value();
  const Status matched = configurator_.demand_matching(service);
  if (!matched.ok()) return matched.error();
  return apply_update(plan, configured, updated_spec, std::move(service));
}

Result<ReconfigureStats> Reconfigurer::update_service(
    DeploymentPlan& plan, std::vector<ConfiguredService>& configured,
    const ServiceSpec& updated_spec, const profiler::ProfileSurfaceSet& surfaces) const {
  const profiler::ProfileSurface* surface = surfaces.find(updated_spec.model);
  if (surface == nullptr) {
    return Error(ErrorCode::kNotFound, "no profile for model " + updated_spec.model);
  }

  auto reconfigured = configurator_.triplet_decision(updated_spec, *surface);
  if (!reconfigured.ok()) return reconfigured.error();
  ConfiguredService service = std::move(reconfigured).value();
  const Status matched = configurator_.demand_matching(service);
  if (!matched.ok()) return matched.error();
  return apply_update(plan, configured, updated_spec, std::move(service));
}

Result<ReconfigureStats> Reconfigurer::apply_update(DeploymentPlan& plan,
                                                    std::vector<ConfiguredService>& configured,
                                                    const ServiceSpec& updated_spec,
                                                    ConfiguredService service) const {
  ReconfigureStats stats;

  // Strip the service's old segments; everything else stays put.
  for (auto& gpu : plan.gpus()) {
    for (std::size_t i = gpu.segments().size(); i-- > 0;) {
      if (gpu.segments()[i].service_id == updated_spec.id) {
        gpu.remove_segment(i);
        ++stats.segments_removed;
      }
    }
    stats.segments_untouched += static_cast<int>(gpu.segments().size());
  }

  // Targeted relocation for this service into the existing map.
  const std::size_t before_units = [&] {
    std::size_t count = 0;
    for (const auto& gpu : plan.gpus()) count += gpu.segments().size();
    return count;
  }();
  const Status placed = allocator_.place_service(plan, service);
  if (!placed.ok()) return placed.error();
  std::size_t after_units = 0;
  for (const auto& gpu : plan.gpus()) after_units += gpu.segments().size();
  stats.segments_added = static_cast<int>(after_units - before_units);

  // Update the configured set, then run the optimization stage to squeeze
  // out fragmentation the update may have opened.
  const auto it = std::find_if(configured.begin(), configured.end(), [&](const auto& c) {
    return c.spec.id == updated_spec.id;
  });
  if (it != configured.end()) {
    *it = service;
  } else {
    configured.push_back(service);
  }
  plan = allocator_.allocation_optimization(std::move(plan), configured);
  plan.compact();

  if (telemetry_ != nullptr) {
    telemetry_->events().record(
        telemetry::EventKind::kPlanDiff, /*t_ms=*/0.0, /*gpu=*/-1, updated_spec.id,
        static_cast<double>(stats.segments_added),
        "removed=" + std::to_string(stats.segments_removed) +
            " added=" + std::to_string(stats.segments_added) +
            " untouched=" + std::to_string(stats.segments_untouched));
    telemetry::MetricsRegistry& m = telemetry_->metrics();
    m.counter("parva_reconfigure_updates_total", "Single-service plan updates applied").inc();
    m.counter("parva_reconfigure_segments_removed_total",
              "Segments stripped from updated services")
        .inc(static_cast<double>(stats.segments_removed));
    m.counter("parva_reconfigure_segments_added_total",
              "Segments placed for updated services")
        .inc(static_cast<double>(stats.segments_added));
  }
  return stats;
}

}  // namespace parva::core
