#include "core/deployer.hpp"

namespace parva::core {

Result<DeployedState> Deployer::deploy(const Deployment& deployment) {
  if (!deployment.uses_mig) {
    return Error(ErrorCode::kUnsupported,
                 "Deployer materialises MIG-backed deployments; MPS-share baselines manage "
                 "whole GPUs directly");
  }
  DeployedState state;
  state.unit_instances.reserve(deployment.units.size());

  // Grow the cluster up front so placements land on the intended devices.
  while (nvml_->cluster().size() < static_cast<std::size_t>(deployment.gpu_count)) {
    auto grown = nvml_->cluster().add_gpu();
    if (!grown.ok()) return grown.error();
  }

  for (const DeployedUnit& unit : deployment.units) {
    PARVA_REQUIRE(unit.placement.has_value(), "MIG unit requires a placement");
    gpu::GlobalInstanceId id;
    auto ret = nvml_->create_gpu_instance_with_placement(
        static_cast<unsigned>(unit.gpu_index), unit.placement->gpcs, unit.placement->start_slot,
        &id);
    if (ret != gpu::NvmlReturn::kSuccess) {
      return Error(ErrorCode::kInternal, std::string("create_gpu_instance failed: ") +
                                             gpu::nvml_error_string(ret));
    }
    if (unit.procs > 1) {
      ret = nvml_->start_mps_daemon(id);
      if (ret != gpu::NvmlReturn::kSuccess) {
        return Error(ErrorCode::kInternal,
                     std::string("start_mps_daemon failed: ") + gpu::nvml_error_string(ret));
      }
    }
    const perfmodel::WorkloadTraits* traits = perf_->catalog().find(unit.model);
    if (traits == nullptr) {
      return Error(ErrorCode::kNotFound, "unknown model " + unit.model);
    }
    const double per_process_mem =
        perfmodel::AnalyticalPerfModel::process_memory_gib(*traits, unit.batch);
    for (int p = 0; p < unit.procs; ++p) {
      gpu::MpsProcess process;
      process.model = unit.model;
      process.batch_size = unit.batch;
      process.memory_gib = per_process_mem;
      ret = nvml_->launch_process(id, process);
      if (ret != gpu::NvmlReturn::kSuccess) {
        return Error(ErrorCode::kInternal,
                     std::string("launch_process failed: ") + gpu::nvml_error_string(ret));
      }
    }
    state.unit_instances.push_back(id);
  }
  return state;
}

Status Deployer::teardown(const DeployedState& state) {
  for (const auto& id : state.unit_instances) {
    nvml_->kill_processes(id);
    const auto ret = nvml_->destroy_gpu_instance(id);
    if (ret != gpu::NvmlReturn::kSuccess) {
      return Status(ErrorCode::kInternal,
                    std::string("destroy_gpu_instance failed: ") + gpu::nvml_error_string(ret));
    }
  }
  return Status::Ok();
}

}  // namespace parva::core
