#include "core/deployer.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace parva::core {

gpu::NvmlReturn Deployer::create_instance_with_retry(const DeployedUnit& unit,
                                                     gpu::GlobalInstanceId* out,
                                                     DeployStats& stats) {
  const auto device = static_cast<unsigned>(unit.gpu_index);
  const int gpcs = unit.placement->gpcs;

  auto attempt_slot = [&](int start_slot) {
    double backoff = retry_.initial_backoff_ms;
    gpu::NvmlReturn ret = gpu::NvmlReturn::kErrorInUse;
    for (int attempt = 0; attempt < std::max(1, retry_.max_attempts); ++attempt) {
      ret = nvml_->create_gpu_instance_with_placement(device, gpcs, start_slot, out);
      if (!gpu::nvml_is_transient(ret)) return ret;
      // Transient: back off (simulated — the accounting is what matters)
      // and retry the same placement.
      ++stats.transient_retries;
      stats.backoff_ms += backoff;
      if (telemetry_ != nullptr) {
        telemetry_->events().record(telemetry::EventKind::kCreateRetry, nvml_->time_ms(),
                                    unit.gpu_index, unit.service_id, backoff);
      }
      backoff = std::min(backoff * retry_.backoff_multiplier, retry_.max_backoff_ms);
    }
    return ret;
  };

  gpu::NvmlReturn ret = attempt_slot(unit.placement->start_slot);
  if (ret == gpu::NvmlReturn::kSuccess || !retry_.allow_fallback_placement) return ret;
  if (ret == gpu::NvmlReturn::kErrorGpuIsLost) return ret;  // nothing to fall back to

  // The planned slot stayed blocked: try the other legal start slots on the
  // same device, in the paper's preference order.
  for (int slot : gpu::preferred_start_slots(gpcs)) {
    if (slot == unit.placement->start_slot) continue;
    const gpu::NvmlReturn fallback = attempt_slot(slot);
    if (fallback == gpu::NvmlReturn::kSuccess) {
      ++stats.fallback_placements;
      if (telemetry_ != nullptr) {
        telemetry_->events().record(telemetry::EventKind::kFallbackPlacement,
                                    nvml_->time_ms(), unit.gpu_index, unit.service_id,
                                    static_cast<double>(slot));
      }
      return fallback;
    }
    if (fallback == gpu::NvmlReturn::kErrorGpuIsLost) return fallback;
  }
  return ret;  // report the original failure
}

Result<DeployedState> Deployer::deploy(const Deployment& deployment) {
  if (!deployment.uses_mig) {
    return Error(ErrorCode::kUnsupported,
                 "Deployer materialises MIG-backed deployments; MPS-share baselines manage "
                 "whole GPUs directly");
  }
  DeployedState state;
  state.unit_instances.reserve(deployment.units.size());
  DeployStats stats;

  // Grow the cluster up front so placements land on the intended devices.
  while (nvml_->cluster().size() < static_cast<std::size_t>(deployment.gpu_count)) {
    auto grown = nvml_->cluster().add_gpu();
    if (!grown.ok()) return grown.error();
  }

  for (const DeployedUnit& unit : deployment.units) {
    PARVA_REQUIRE(unit.placement.has_value(), "MIG unit requires a placement");
    gpu::GlobalInstanceId id;
    auto ret = create_instance_with_retry(unit, &id, stats);
    if (ret != gpu::NvmlReturn::kSuccess) {
      last_stats_ = stats;
      total_stats_.merge(stats);
      return Error(ErrorCode::kInternal, std::string("create_gpu_instance failed: ") +
                                             gpu::nvml_error_string(ret));
    }
    if (unit.procs > 1) {
      ret = nvml_->start_mps_daemon(id);
      if (ret != gpu::NvmlReturn::kSuccess) {
        return Error(ErrorCode::kInternal,
                     std::string("start_mps_daemon failed: ") + gpu::nvml_error_string(ret));
      }
    }
    const perfmodel::WorkloadTraits* traits = perf_->catalog().find(unit.model);
    if (traits == nullptr) {
      return Error(ErrorCode::kNotFound, "unknown model " + unit.model);
    }
    const double per_process_mem =
        perfmodel::AnalyticalPerfModel::process_memory_gib(*traits, unit.batch);
    for (int p = 0; p < unit.procs; ++p) {
      gpu::MpsProcess process;
      process.model = unit.model;
      process.batch_size = unit.batch;
      process.memory_gib = per_process_mem;
      ret = nvml_->launch_process(id, process);
      if (ret != gpu::NvmlReturn::kSuccess) {
        return Error(ErrorCode::kInternal,
                     std::string("launch_process failed: ") + gpu::nvml_error_string(ret));
      }
    }
    state.unit_instances.push_back(id);
    if (telemetry_ != nullptr) {
      telemetry_->events().record(telemetry::EventKind::kInstanceCreated, nvml_->time_ms(),
                                  id.gpu, unit.service_id,
                                  static_cast<double>(unit.placement->gpcs));
    }
  }
  last_stats_ = stats;
  total_stats_.merge(stats);
  if (telemetry_ != nullptr) {
    telemetry::MetricsRegistry& m = telemetry_->metrics();
    m.counter("parva_deploy_instances_total", "GPU instances created by the Deployer")
        .inc(static_cast<double>(state.unit_instances.size()));
    m.counter("parva_deploy_transient_retries_total",
              "Instance creates repeated after a transient NVML failure")
        .inc(static_cast<double>(stats.transient_retries));
    m.counter("parva_deploy_backoff_ms_total", "Simulated wall-clock spent backing off")
        .inc(stats.backoff_ms);
    m.counter("parva_deploy_fallback_placements_total",
              "Units placed at a non-planned slot after retry exhaustion")
        .inc(static_cast<double>(stats.fallback_placements));
  }
  return state;
}

Status Deployer::teardown(const DeployedState& state) {
  for (const auto& id : state.unit_instances) {
    if (id.gpu >= 0 && nvml_->device_lost(static_cast<unsigned>(id.gpu))) {
      continue;  // the device reset already destroyed the instance
    }
    const auto kill_ret = nvml_->kill_processes(id);
    if (kill_ret != gpu::NvmlReturn::kSuccess) {
      // Keep tearing down: a failed kill must not leak the instance itself.
      PARVA_LOG_WARN << "teardown: kill_processes failed on gpu " << id.gpu << ": "
                     << gpu::nvml_error_string(kill_ret);
    }
    const auto ret = nvml_->destroy_gpu_instance(id);
    if (ret != gpu::NvmlReturn::kSuccess) {
      return Status(ErrorCode::kInternal,
                    std::string("destroy_gpu_instance failed: ") + gpu::nvml_error_string(ret));
    }
    if (telemetry_ != nullptr) {
      telemetry_->events().record(telemetry::EventKind::kInstanceDestroyed,
                                  nvml_->time_ms(), id.gpu);
    }
  }
  return Status::Ok();
}

}  // namespace parva::core
