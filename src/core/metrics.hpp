// GPU utilisation metrics of the paper's evaluation:
//
//   Internal slack (Eq. 3):
//       1 - sum_i(SM_i * A_i) / sum_i(SM_i)
//   over deployed units i, where A_i is the unit's DCGM-style SM activity.
//   Analytically, A_i = occupancy_i * load_fraction_i: a unit is idle both
//   when its kernels cannot fill its grant (occupancy < 1) and when its
//   assigned load is below its capacity (over-provisioning).
//
//   External fragmentation (Eq. 4 complement):
//       1 - sum_i(SM_i) / (G * S)
//   the fraction of cluster SMs granted to nobody.
#pragma once

#include <span>

#include "core/deployment.hpp"

namespace parva::core {

struct UtilizationMetrics {
  int gpu_count = 0;
  double internal_slack = 0.0;          ///< [0,1]
  double external_fragmentation = 0.0;  ///< [0,1]
  double total_granted_gpcs = 0.0;
  /// Deployed units whose service_id had no ServiceSpec. Such units count
  /// as fully idle, which inflates internal_slack — nonzero here means the
  /// slack figure is measuring a mismatch, not over-provisioning (a
  /// warn-once log fires the first time it happens in a process).
  int units_without_spec = 0;
};

/// Computes the metrics analytically from the deployment and the offered
/// load (each service's rate is spread across its units proportionally to
/// their ground-truth capacity, which is how the serving layer dispatches).
UtilizationMetrics compute_metrics(const Deployment& deployment,
                                   std::span<const ServiceSpec> services);

/// Eq. 3 with externally measured activities (from the discrete-event
/// simulator's DCGM counters): activities[i] corresponds to units[i].
double internal_slack_from_activity(const Deployment& deployment,
                                    std::span<const double> activities);

}  // namespace parva::core
