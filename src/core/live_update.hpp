// Live reconfiguration with shadow processes (paper Section III-F).
//
// Reconfiguring MIG and MPS takes "milliseconds to a few seconds"; during
// that window the affected service cannot serve. The paper proposes (as
// future work) running shadow processes on spare GPUs so traffic drains to
// the shadow while the primary segments are rebuilt. This module implements
// both update strategies against the simulated control plane and accounts
// the per-service unavailability:
//
//   * kInPlace  — destroy the service's old instances, then create the new
//                 ones; the service is dark for the whole window.
//   * kShadowed — first clone one serving segment per affected service onto
//                 a spare GPU, shift traffic, rebuild the primaries, shift
//                 back, tear the shadow down; downtime is zero at the cost
//                 of temporary spare-GPU capacity.
//
// Control-plane operation costs are configurable; defaults follow the
// ranges NVIDIA documents for MIG instance creation and process launch.
#pragma once

#include <map>

#include "core/deployer.hpp"

namespace parva::core {

enum class UpdateStrategy { kInPlace, kShadowed };

/// Wall-clock cost model of the control-plane operations (ms).
struct ReconfigOpCosts {
  double destroy_instance_ms = 80.0;
  double create_instance_ms = 250.0;
  double start_mps_ms = 40.0;
  double launch_process_ms = 600.0;  ///< model load + CUDA context
};

struct LiveUpdateReport {
  /// Unavailability window per affected service id (0 when shadowed).
  std::map<int, double> downtime_ms;
  /// Total wall-clock of the whole update.
  double makespan_ms = 0.0;
  /// Segments that were not touched at all (other services, or identical
  /// placements in old and new maps).
  int untouched_units = 0;
  int removed_units = 0;
  int added_units = 0;
  int shadow_units = 0;
  /// Shadow instances whose post-shift teardown failed (slice leaked; traffic
  /// was already back on the rebuilt segment, so serving is unaffected).
  int shadow_teardown_failures = 0;

  double worst_downtime_ms() const {
    double worst = 0.0;
    for (const auto& [id, ms] : downtime_ms) worst = std::max(worst, ms);
    return worst;
  }
};

/// Applies a new deployment to a live cluster, unit-diffing against the
/// current one so only changed segments are rebuilt.
class LiveUpdater {
 public:
  LiveUpdater(Deployer& deployer, ReconfigOpCosts costs = {})
      : deployer_(&deployer), costs_(costs) {}

  /// Transitions the cluster from (current, state) to `target`.
  /// On success `state` describes the target deployment's instances.
  /// kShadowed places one shadow segment per affected service on GPUs
  /// beyond the target's count (the spare pool); if no shadow placement is
  /// possible for a service it falls back to in-place for that service.
  [[nodiscard]] Result<LiveUpdateReport> apply(const Deployment& current, DeployedState& state,
                                 const Deployment& target, UpdateStrategy strategy);

 private:
  Deployer* deployer_;
  ReconfigOpCosts costs_;
};

}  // namespace parva::core
