#include "core/service.hpp"

#include "common/error.hpp"

namespace parva::core {

Triplet to_triplet(const profiler::ProfilePoint& point) {
  PARVA_REQUIRE(!point.oom, "cannot build a triplet from an OOM point");
  Triplet triplet;
  triplet.gpcs = point.gpcs;
  triplet.batch = point.batch;
  triplet.procs = point.procs;
  triplet.throughput = point.throughput;
  triplet.latency_ms = point.latency_ms;
  triplet.sm_occupancy = point.sm_occupancy;
  triplet.memory_gib = point.memory_gib;
  return triplet;
}

int instance_size_index(int gpcs) {
  switch (gpcs) {
    case 1: return 0;
    case 2: return 1;
    case 3: return 2;
    case 4: return 3;
    case 7: return 4;
    default: return -1;
  }
}

int instance_size_from_index(int index) {
  switch (index) {
    case 0: return 1;
    case 1: return 2;
    case 2: return 3;
    case 3: return 4;
    case 4: return 7;
    default: return -1;
  }
}

}  // namespace parva::core
