#include "core/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "gpu/arch.hpp"

namespace parva::core {

UtilizationMetrics compute_metrics(const Deployment& deployment,
                                   std::span<const ServiceSpec> services) {
  UtilizationMetrics metrics;
  metrics.gpu_count = deployment.gpu_count;
  metrics.total_granted_gpcs = deployment.total_granted_gpcs();

  double granted_sms = 0.0;
  double busy_sms = 0.0;
  for (const DeployedUnit& unit : deployment.units) {
    // Load fraction: the share of this unit's capacity its service's rate
    // actually exercises. Units of one service all run at the same load
    // fraction because the dispatcher splits proportionally to capacity.
    double load_fraction = 0.0;
    const auto spec = std::find_if(services.begin(), services.end(),
                                   [&](const ServiceSpec& s) { return s.id == unit.service_id; });
    if (spec != services.end()) {
      const double capacity = deployment.service_capacity(unit.service_id);
      load_fraction = capacity <= 0.0 ? 0.0 : std::min(1.0, spec->request_rate / capacity);
    }
    const double sms = unit.gpc_grant * gpu::kSmsPerGpc;
    granted_sms += sms;
    busy_sms += sms * unit.sm_occupancy * load_fraction;
  }
  metrics.internal_slack = granted_sms <= 0.0 ? 0.0 : 1.0 - busy_sms / granted_sms;

  const double cluster_sms =
      static_cast<double>(deployment.gpu_count) * gpu::kSmsPerGpu;
  metrics.external_fragmentation =
      cluster_sms <= 0.0 ? 0.0 : std::max(0.0, 1.0 - granted_sms / cluster_sms);
  return metrics;
}

double internal_slack_from_activity(const Deployment& deployment,
                                    std::span<const double> activities) {
  PARVA_REQUIRE(activities.size() == deployment.units.size(),
                "one activity sample per deployed unit required");
  double granted_sms = 0.0;
  double busy_sms = 0.0;
  for (std::size_t i = 0; i < deployment.units.size(); ++i) {
    const double sms = deployment.units[i].gpc_grant * gpu::kSmsPerGpc;
    granted_sms += sms;
    busy_sms += sms * std::clamp(activities[i], 0.0, 1.0);
  }
  return granted_sms <= 0.0 ? 0.0 : 1.0 - busy_sms / granted_sms;
}

}  // namespace parva::core
