#include "core/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "gpu/arch.hpp"

namespace parva::core {

UtilizationMetrics compute_metrics(const Deployment& deployment,
                                   std::span<const ServiceSpec> services) {
  UtilizationMetrics metrics;
  metrics.gpu_count = deployment.gpu_count;
  metrics.total_granted_gpcs = deployment.total_granted_gpcs();

  // One-time id -> spec map; the per-unit find_if this replaces made the
  // whole computation O(units x services).
  std::unordered_map<int, const ServiceSpec*> spec_by_id;
  spec_by_id.reserve(services.size());
  for (const ServiceSpec& spec : services) spec_by_id.emplace(spec.id, &spec);

  double granted_sms = 0.0;
  double busy_sms = 0.0;
  for (const DeployedUnit& unit : deployment.units) {
    // Load fraction: the share of this unit's capacity its service's rate
    // actually exercises. Units of one service all run at the same load
    // fraction because the dispatcher splits proportionally to capacity.
    double load_fraction = 0.0;
    const auto it = spec_by_id.find(unit.service_id);
    if (it != spec_by_id.end()) {
      const double capacity = deployment.service_capacity(unit.service_id);
      load_fraction = capacity <= 0.0 ? 0.0 : std::min(1.0, it->second->request_rate / capacity);
    } else {
      // A unit whose service has no spec contributes zero busy SM-time but
      // full granted SM-time, which silently inflates internal slack (the
      // typical cause: a fault shed a service's spec but its units were
      // passed in). Count it and warn once so the skew is visible.
      ++metrics.units_without_spec;
    }
    const double sms = unit.gpc_grant * gpu::kSmsPerGpc;
    granted_sms += sms;  // parva-audit: allow(R14): fixed vector index order
    busy_sms += sms * unit.sm_occupancy * load_fraction;
  }
  if (metrics.units_without_spec > 0) {
    static std::atomic<bool> warned{false};
    // relaxed: warn-once gate; the exchange is atomic and no other state
    // is published under the flag.
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      PARVA_LOG_WARN << "compute_metrics: " << metrics.units_without_spec
                     << " deployed unit(s) have no matching ServiceSpec; they count as "
                        "fully idle and inflate internal slack (warning once; see "
                        "UtilizationMetrics::units_without_spec)";
    }
  }
  metrics.internal_slack = granted_sms <= 0.0 ? 0.0 : 1.0 - busy_sms / granted_sms;

  const double cluster_sms =
      static_cast<double>(deployment.gpu_count) * gpu::kSmsPerGpu;
  metrics.external_fragmentation =
      cluster_sms <= 0.0 ? 0.0 : std::max(0.0, 1.0 - granted_sms / cluster_sms);
  return metrics;
}

double internal_slack_from_activity(const Deployment& deployment,
                                    std::span<const double> activities) {
  PARVA_REQUIRE(activities.size() == deployment.units.size(),
                "one activity sample per deployed unit required");
  double granted_sms = 0.0;
  double busy_sms = 0.0;
  for (std::size_t i = 0; i < deployment.units.size(); ++i) {
    const double sms = deployment.units[i].gpc_grant * gpu::kSmsPerGpc;
    granted_sms += sms;  // parva-audit: allow(R14): fixed vector index order
    busy_sms += sms * std::clamp(activities[i], 0.0, 1.0);
  }
  return granted_sms <= 0.0 ? 0.0 : 1.0 - busy_sms / granted_sms;
}

}  // namespace parva::core
