// The ParvaGPU scheduler facade: Segment Configurator + Segment Allocator
// behind the framework-neutral Scheduler interface. Also provides the
// ParvaGPU-single (no MPS) and ParvaGPU-unoptimized (no Allocation
// Optimization) variants used in the paper's ablations.
//
// schedule() is the paper's "predictor" mode: it produces a deployment map
// without touching hardware; the Deployer (deployer.hpp) materialises a map
// on the (simulated) cluster afterwards.
#pragma once

#include <span>

#include "core/allocator.hpp"
#include "core/configurator.hpp"
#include "core/deployment.hpp"
#include "profiler/profile_types.hpp"
#include "telemetry/telemetry.hpp"

namespace parva::core {

struct ParvaGpuOptions {
  /// false reproduces ParvaGPU-single: one process per segment.
  bool use_mps = true;
  /// false reproduces ParvaGPU-unoptimized: relocation only.
  bool optimize_allocation = true;
  double internal_latency_factor = 0.5;
  int optimization_threshold_gpcs = 4;
  /// When set, per-service configuration fans out across this pool once the
  /// service count reaches `parallel_threshold` (small sets stay serial —
  /// the dispatch overhead would dominate). Output is identical either way.
  ThreadPool* pool = nullptr;
  std::size_t parallel_threshold = 64;
  /// Observability sink (nullptr = disabled, the default). schedule() emits
  /// a completion event plus run counters; plans are identical either way.
  telemetry::Telemetry* telemetry = nullptr;
};

class ParvaGpuScheduler final : public Scheduler {
 public:
  /// `profiles` must contain a table for every model that will be
  /// scheduled; profiling is the one-time cost of Section III-C and is
  /// deliberately outside the scheduling-delay measurement. The profile
  /// surfaces are indexed here, in the same one-time registration phase.
  ParvaGpuScheduler(const profiler::ProfileSet& profiles, ParvaGpuOptions options = {});

  std::string name() const override;
  [[nodiscard]] Result<ScheduleResult> schedule(std::span<const ServiceSpec> services) override;

  /// The last run's internals, for the Deployer and reconfiguration path.
  const DeploymentPlan& last_plan() const { return last_plan_; }
  const std::vector<ConfiguredService>& last_configured() const { return last_configured_; }

  /// Converts a deployment map into the framework-neutral form. MIG
  /// isolation means actual == planned for every unit.
  static Deployment to_deployment(const DeploymentPlan& plan, std::string framework_name);

  const ParvaGpuOptions& parva_options() const { return options_; }
  /// The indexed profile surfaces the scheduler plans against.
  const profiler::ProfileSurfaceSet& surfaces() const { return surfaces_; }

 private:
  const profiler::ProfileSet* profiles_;
  profiler::ProfileSurfaceSet surfaces_;
  ParvaGpuOptions options_;
  SegmentConfigurator configurator_;
  SegmentAllocator allocator_;
  DeploymentPlan last_plan_;
  std::vector<ConfiguredService> last_configured_;
};

}  // namespace parva::core
