#include "core/repair.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace parva::core {

std::vector<std::size_t> RepairCoordinator::detect_lost_units(
    const Deployment& deployment) const {
  std::vector<std::size_t> lost;
  for (std::size_t i = 0; i < deployment.units.size(); ++i) {
    const int gpu = deployment.units[i].gpu_index;
    if (gpu >= 0 && deployer_->nvml().device_lost(static_cast<unsigned>(gpu))) {
      lost.push_back(i);
    }
  }
  return lost;
}

Result<RepairReport> RepairCoordinator::handle_gpu_loss(Deployment& current,
                                                        DeployedState& state, int lost_gpu) {
  if (state.unit_instances.size() != current.units.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "DeployedState does not match the current deployment");
  }
  if (!current.uses_mig) {
    return Error(ErrorCode::kUnsupported, "repair operates on MIG-backed deployments");
  }

  RepairReport report;
  report.lost_gpu = lost_gpu;

  // Partition the deployment into survivors and the units the failure took
  // down. The lost instances no longer exist on the hardware (the device
  // reset destroyed them), so the survivor state simply drops their ids.
  Deployment survivors = current;
  survivors.units.clear();
  DeployedState survivor_state;
  std::vector<DeployedUnit> lost_units;
  for (std::size_t i = 0; i < current.units.size(); ++i) {
    if (current.units[i].gpu_index == lost_gpu) {
      lost_units.push_back(current.units[i]);
    } else {
      survivors.units.push_back(current.units[i]);
      survivor_state.unit_instances.push_back(state.unit_instances[i]);
    }
  }
  report.lost_units = static_cast<int>(lost_units.size());
  if (lost_units.empty()) {
    report.deployment = current;
    return report;  // nothing hosted there; no recovery needed
  }

  std::set<int> affected;
  for (const DeployedUnit& unit : lost_units) {
    affected.insert(unit.service_id);
    report.displaced_rate += unit.actual_throughput;
  }
  report.affected_services.assign(affected.begin(), affected.end());

  if (options_.telemetry != nullptr) {
    const double now = deployer_->nvml().time_ms();
    for (const int service : report.affected_services) {
      options_.telemetry->events().record(telemetry::EventKind::kDisplacement, now,
                                          lost_gpu, service, report.displaced_rate);
    }
    options_.telemetry->metrics()
        .counter("parva_repair_displaced_units_total", "Units displaced by device losses")
        .inc(static_cast<double>(report.lost_units));
  }

  // Free-slot geometry of the surviving fleet.
  std::map<int, std::uint8_t> occupied;
  int max_gpu = lost_gpu;
  for (const DeployedUnit& unit : survivors.units) {
    PARVA_REQUIRE(unit.placement.has_value(), "MIG unit requires a placement");
    occupied[unit.gpu_index] |= unit.placement->slot_mask();
    max_gpu = std::max(max_gpu, unit.gpu_index);
  }

  // Re-place the displaced units, largest first so big profiles grab the
  // remaining contiguous gaps before 1-GPC segments fragment them. Each
  // replacement keeps its triplet (size/batch/procs), so the restored
  // capacity equals the displaced capacity exactly; only the placement
  // moves. When no surviving GPU has room, a standby device (index beyond
  // the current fleet — the cloud's replacement node) takes the segment.
  std::vector<DeployedUnit> displaced = lost_units;
  std::stable_sort(displaced.begin(), displaced.end(),
                   [](const DeployedUnit& a, const DeployedUnit& b) {
                     return a.placement->gpcs > b.placement->gpcs;
                   });
  for (DeployedUnit unit : displaced) {
    const int gpcs = unit.placement->gpcs;
    bool placed = false;
    for (int g = 0; g <= max_gpu && !placed; ++g) {
      if (g == lost_gpu) continue;
      const auto slot = gpu::find_start_slot(occupied[g], gpcs);
      if (!slot.has_value()) continue;
      unit.gpu_index = g;
      unit.placement = gpu::Placement{gpcs, *slot};
      occupied[g] |= unit.placement->slot_mask();
      placed = true;
    }
    if (!placed) {
      ++max_gpu;  // standby device; an empty GPU fits any single profile
      unit.gpu_index = max_gpu;
      unit.placement = gpu::Placement{gpcs, gpu::preferred_start_slots(gpcs).front()};
      occupied[max_gpu] |= unit.placement->slot_mask();
    }
    report.replacements.push_back(std::move(unit));
  }
  report.replaced_units = static_cast<int>(report.replacements.size());

  Deployment target = survivors;
  target.units.insert(target.units.end(), report.replacements.begin(),
                      report.replacements.end());
  target.gpu_count = std::max(current.gpu_count, max_gpu + 1);

  // Drive the transition through the live updater: survivors stay
  // untouched, only the replacements are created.
  const DeployStats before = deployer_->total_stats();
  auto update = updater_->apply(survivors, survivor_state, target, options_.strategy);
  if (!update.ok()) return update.error();
  const DeployStats after = deployer_->total_stats();
  report.deploy_stats.transient_retries = after.transient_retries - before.transient_retries;
  report.deploy_stats.backoff_ms = after.backoff_ms - before.backoff_ms;
  report.deploy_stats.fallback_placements =
      after.fallback_placements - before.fallback_placements;

  report.update = std::move(update).value();
  report.recovery_ms = options_.detection_latency_ms + report.update.makespan_ms +
                       report.deploy_stats.backoff_ms;
  report.deployment = target;

  if (options_.telemetry != nullptr) {
    options_.telemetry->events().record(
        telemetry::EventKind::kRepairCompleted, deployer_->nvml().time_ms(), lost_gpu,
        /*service_id=*/-1, report.recovery_ms,
        "replaced=" + std::to_string(report.replaced_units) +
            " retries=" + std::to_string(report.deploy_stats.transient_retries));
    telemetry::MetricsRegistry& m = options_.telemetry->metrics();
    m.counter("parva_repair_repairs_total", "Completed device-loss repairs").inc();
    m.counter("parva_repair_replaced_units_total", "Replacement units brought up")
        .inc(static_cast<double>(report.replaced_units));
    m.histogram("parva_repair_recovery_ms", {100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0},
                "End-to-end recovery time per repair")
        .observe(report.recovery_ms);
  }

  current = std::move(target);
  state = std::move(survivor_state);
  return report;
}

}  // namespace parva::core
