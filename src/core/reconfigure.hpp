// SLO-change reconfiguration (paper Section III-F): when a service's SLO
// (or rate) changes, only that service is re-configured and re-placed; all
// other services keep their placements, so the physical reconfiguration
// cost is proportional to the one service's segments.
#pragma once

#include <span>
#include <vector>

#include "core/allocator.hpp"
#include "core/configurator.hpp"
#include "core/plan.hpp"
#include "profiler/profile_types.hpp"
#include "telemetry/telemetry.hpp"

namespace parva::core {

struct ReconfigureStats {
  int segments_removed = 0;   ///< old segments of the updated service
  int segments_added = 0;     ///< new segments placed for it
  int segments_untouched = 0; ///< segments of other services left in place
};

class Reconfigurer {
 public:
  /// `telemetry` (nullptr = disabled) receives a plan-diff event per update;
  /// the produced plans are identical either way.
  Reconfigurer(SegmentConfigurator configurator, SegmentAllocator allocator,
               telemetry::Telemetry* telemetry = nullptr)
      : configurator_(std::move(configurator)), allocator_(std::move(allocator)),
        telemetry_(telemetry) {}

  /// Applies an updated spec for one service: re-runs the Segment
  /// Configurator for it alone, strips its old segments from the map,
  /// re-places the new ones into the existing map, then runs Allocation
  /// Optimization. `plan` and `configured` are updated in place.
  [[nodiscard]] Result<ReconfigureStats> update_service(DeploymentPlan& plan,
                                          std::vector<ConfiguredService>& configured,
                                          const ServiceSpec& updated_spec,
                                          const profiler::ProfileSet& profiles) const;

  /// Fast-path variant over indexed surfaces: repeated SLO/rate updates hit
  /// the surface's memoized grid instead of re-scanning the profile table.
  /// Produces the same plan as the ProfileSet overload.
  [[nodiscard]] Result<ReconfigureStats> update_service(DeploymentPlan& plan,
                                          std::vector<ConfiguredService>& configured,
                                          const ServiceSpec& updated_spec,
                                          const profiler::ProfileSurfaceSet& surfaces) const;

 private:
  [[nodiscard]] Result<ReconfigureStats> apply_update(DeploymentPlan& plan,
                                        std::vector<ConfiguredService>& configured,
                                        const ServiceSpec& updated_spec,
                                        ConfiguredService service) const;

  SegmentConfigurator configurator_;
  SegmentAllocator allocator_;
  telemetry::Telemetry* telemetry_ = nullptr;
};

}  // namespace parva::core
