// The Deployer (paper Section III-F): materialises a deployment map on the
// cluster through the NVML-shaped control plane — create GPU instances at
// their planned placements, start MPS daemons, and launch the inference
// processes.
//
// Robustness: instance creation can fail transiently (NVML_ERROR_IN_USE
// while the driver finishes a teardown). The Deployer retries such
// failures with bounded exponential backoff; when a placement stays
// blocked past the retry budget it falls back to an alternate legal slot
// on the same device. Retries and backoff are accounted in DeployStats so
// transient faults are invisible in the produced deployment and visible
// only in the metrics.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/deployment.hpp"
#include "gpu/nvml_sim.hpp"
#include "perfmodel/analytical_model.hpp"
#include "telemetry/telemetry.hpp"

namespace parva::core {

/// Retry discipline for transient control-plane failures.
struct RetryPolicy {
  int max_attempts = 8;            ///< attempts per placement before fallback
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 500.0;   ///< cap of the exponential backoff
  bool allow_fallback_placement = true;  ///< try alternate legal slots after retries
};

/// Accounting of one deploy() call's fault handling.
struct DeployStats {
  int transient_retries = 0;     ///< creates repeated after NVML_ERROR_IN_USE
  double backoff_ms = 0.0;       ///< simulated wall-clock spent backing off
  int fallback_placements = 0;   ///< units placed at a non-planned slot

  void merge(const DeployStats& other) {
    transient_retries += other.transient_retries;
    backoff_ms += other.backoff_ms;
    fallback_placements += other.fallback_placements;
  }
};

/// Mapping from deployed units to their live instance ids.
struct DeployedState {
  std::vector<gpu::GlobalInstanceId> unit_instances;  ///< parallel to deployment.units
};

class Deployer {
 public:
  Deployer(gpu::NvmlSim& nvml, const perfmodel::AnalyticalPerfModel& perf,
           RetryPolicy retry = {})
      : nvml_(&nvml), perf_(&perf), retry_(retry) {}

  /// Applies a MIG-backed deployment to the cluster. The cluster must have
  /// enough devices (elastic clusters grow automatically).
  [[nodiscard]] Result<DeployedState> deploy(const Deployment& deployment);

  /// Tears down the instances recorded in `state`. Instances on lost
  /// devices are already gone and are skipped.
  [[nodiscard]] Status teardown(const DeployedState& state);

  /// Fault accounting of the most recent deploy() call.
  const DeployStats& last_deploy_stats() const { return last_stats_; }
  /// Cumulative fault accounting across this Deployer's lifetime.
  const DeployStats& total_stats() const { return total_stats_; }

  const RetryPolicy& retry_policy() const { return retry_; }

  /// Observability sink (nullptr = disabled). Instance create/destroy,
  /// retry, backoff and fallback decisions are mirrored into it; the
  /// produced deployments are identical either way.
  void set_telemetry(telemetry::Telemetry* telemetry) { telemetry_ = telemetry; }

  gpu::NvmlSim& nvml() { return *nvml_; }

 private:
  /// Creates one unit's instance, retrying transient failures with
  /// exponential backoff and falling back to alternate legal slots.
  [[nodiscard]] gpu::NvmlReturn create_instance_with_retry(const DeployedUnit& unit,
                                             gpu::GlobalInstanceId* out,
                                             DeployStats& stats);

  gpu::NvmlSim* nvml_;
  const perfmodel::AnalyticalPerfModel* perf_;
  telemetry::Telemetry* telemetry_ = nullptr;
  RetryPolicy retry_;
  DeployStats last_stats_;
  DeployStats total_stats_;
};

}  // namespace parva::core
