// The Deployer (paper Section III-F): materialises a deployment map on the
// cluster through the NVML-shaped control plane — create GPU instances at
// their planned placements, start MPS daemons, and launch the inference
// processes.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/deployment.hpp"
#include "gpu/nvml_sim.hpp"
#include "perfmodel/analytical_model.hpp"

namespace parva::core {

/// Mapping from deployed units to their live instance ids.
struct DeployedState {
  std::vector<gpu::GlobalInstanceId> unit_instances;  ///< parallel to deployment.units
};

class Deployer {
 public:
  Deployer(gpu::NvmlSim& nvml, const perfmodel::AnalyticalPerfModel& perf)
      : nvml_(&nvml), perf_(&perf) {}

  /// Applies a MIG-backed deployment to the cluster. The cluster must have
  /// enough devices (elastic clusters grow automatically).
  Result<DeployedState> deploy(const Deployment& deployment);

  /// Tears down the instances recorded in `state`.
  Status teardown(const DeployedState& state);

  gpu::NvmlSim& nvml() { return *nvml_; }

 private:
  gpu::NvmlSim* nvml_;
  const perfmodel::AnalyticalPerfModel* perf_;
};

}  // namespace parva::core
