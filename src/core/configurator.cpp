#include "core/configurator.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace parva::core {

Result<ConfiguredService> SegmentConfigurator::triplet_decision(
    const ServiceSpec& spec, const profiler::ProfileTable& profile) const {
  PARVA_REQUIRE(spec.slo_latency_ms > 0.0, "service SLO latency must be positive");
  PARVA_REQUIRE(spec.request_rate >= 0.0, "service request rate must be non-negative");

  const double latency_bound = spec.slo_latency_ms * options_.internal_latency_factor;

  ConfiguredService configured;
  configured.spec = spec;

  // UPDATEMAXTRIPLETS: keep the maximum-throughput point per instance size
  // among points whose latency is below the internal bound.
  for (const profiler::ProfilePoint& point : profile.points()) {
    if (point.oom) continue;
    if (point.procs > options_.max_processes) continue;
    if (point.latency_ms >= latency_bound) continue;
    const int index = instance_size_index(point.gpcs);
    if (index < 0) continue;
    auto& slot = configured.opt_tri_array[static_cast<std::size_t>(index)];
    if (!slot.has_value() || point.throughput > slot->throughput) {
      slot = to_triplet(point);
    }
  }

  const bool any = std::any_of(configured.opt_tri_array.begin(), configured.opt_tri_array.end(),
                               [](const auto& t) { return t.has_value(); });
  if (!any) {
    return Error(ErrorCode::kCapacityExceeded,
                 "service " + std::to_string(spec.id) + " (" + spec.model +
                     "): no instance size meets the internal latency bound of " +
                     std::to_string(latency_bound) + " ms");
  }
  return configured;
}

Result<ConfiguredService> SegmentConfigurator::triplet_decision(
    const ServiceSpec& spec, const profiler::ProfileSurface& surface) const {
  PARVA_REQUIRE(spec.slo_latency_ms > 0.0, "service SLO latency must be positive");
  PARVA_REQUIRE(spec.request_rate >= 0.0, "service request rate must be non-negative");

  const double latency_bound = spec.slo_latency_ms * options_.internal_latency_factor;

  ConfiguredService configured;
  configured.spec = spec;

  // UPDATEMAXTRIPLETS on the surface: per instance size, the prefix-argmax
  // shelf answers "max throughput with latency strictly below the bound"
  // directly; the winner (including tie order) equals the table scan's.
  bool any = false;
  for (int index = 0; index < kInstanceSizeCount; ++index) {
    const int gpcs = instance_size_from_index(index);
    const profiler::ProfilePoint* best =
        surface.best_below(gpcs, options_.max_processes, latency_bound);
    if (best == nullptr) continue;
    configured.opt_tri_array[static_cast<std::size_t>(index)] = to_triplet(*best);
    any = true;
  }

  if (!any) {
    return Error(ErrorCode::kCapacityExceeded,
                 "service " + std::to_string(spec.id) + " (" + spec.model +
                     "): no instance size meets the internal latency bound of " +
                     std::to_string(latency_bound) + " ms");
  }
  return configured;
}

Status SegmentConfigurator::demand_matching(ConfiguredService& service) const {
  // OPTSEG: the triplet maximising Throughput/InstanceSize. By Eq. 2 this
  // minimises the GPC count for any request rate, making the tree search
  // of Section III-D2 an O(1) decision.
  const Triplet* best = nullptr;
  for (const auto& candidate : service.opt_tri_array) {
    if (!candidate.has_value()) continue;
    if (best == nullptr || candidate->throughput_per_gpc() > best->throughput_per_gpc()) {
      best = &*candidate;
    }
  }
  if (best == nullptr) {
    return Status(ErrorCode::kInternal, "demand_matching before triplet_decision");
  }
  service.opt_seg = *best;

  const double rate = service.spec.request_rate;
  if (rate <= 0.0) {
    service.num_opt_seg = 0;
    service.last_seg.reset();
    return Status::Ok();
  }

  service.num_opt_seg = static_cast<int>(std::floor(rate / service.opt_seg.throughput));

  // GETLEFTREQRATE: remainder after the whole optimal segments.
  const double left =
      rate - static_cast<double>(service.num_opt_seg) * service.opt_seg.throughput;
  constexpr double kRateEpsilon = 1e-9;
  if (left <= kRateEpsilon) {
    service.last_seg.reset();
    return Status::Ok();
  }

  // LASTSEG: the smallest instance size whose best triplet covers the
  // remainder (preventing internal slack on the final segment).
  service.last_seg.reset();
  for (const auto& candidate : service.opt_tri_array) {  // array is ordered by size
    if (!candidate.has_value()) continue;
    if (candidate->throughput >= left) {
      service.last_seg = *candidate;
      break;
    }
  }
  if (!service.last_seg.has_value()) {
    // The remainder is below one optimal segment's throughput, so the
    // optimal segment itself always covers it; reaching here means the
    // triplet array was inconsistent.
    service.last_seg = service.opt_seg;
  }
  return Status::Ok();
}

Result<std::vector<ConfiguredService>> SegmentConfigurator::configure(
    std::span<const ServiceSpec> services, const profiler::ProfileSet& profiles) const {
  std::vector<ConfiguredService> configured;
  configured.reserve(services.size());
  for (const ServiceSpec& spec : services) {
    const profiler::ProfileTable* table = profiles.find(spec.model);
    if (table == nullptr) {
      return Error(ErrorCode::kNotFound, "no profile for model " + spec.model);
    }
    auto result = triplet_decision(spec, *table);
    if (!result.ok()) return result.error();
    ConfiguredService service = std::move(result).value();
    const Status matched = demand_matching(service);
    if (!matched.ok()) return matched.error();
    configured.push_back(std::move(service));
  }
  return configured;
}

Result<ConfiguredService> SegmentConfigurator::configure_one(
    const ServiceSpec& spec, const profiler::ProfileSurfaceSet& surfaces) const {
  const profiler::ProfileSurface* surface = surfaces.find(spec.model);
  if (surface == nullptr) {
    return Error(ErrorCode::kNotFound, "no profile for model " + spec.model);
  }
  auto result = triplet_decision(spec, *surface);
  if (!result.ok()) return result.error();
  ConfiguredService service = std::move(result).value();
  const Status matched = demand_matching(service);
  if (!matched.ok()) return matched.error();
  return service;
}

Result<std::vector<ConfiguredService>> SegmentConfigurator::configure(
    std::span<const ServiceSpec> services, const profiler::ProfileSurfaceSet& surfaces) const {
  std::vector<ConfiguredService> configured;
  configured.reserve(services.size());
  for (const ServiceSpec& spec : services) {
    auto result = configure_one(spec, surfaces);
    if (!result.ok()) return result.error();
    configured.push_back(std::move(result).value());
  }
  return configured;
}

Result<std::vector<ConfiguredService>> SegmentConfigurator::configure(
    std::span<const ServiceSpec> services, const profiler::ProfileSurfaceSet& surfaces,
    ThreadPool& pool) const {
  // Each task writes only its own slot; the merge below walks the slots in
  // service order, so the returned vector — and the returned error, when
  // any service fails — match the serial loop exactly.
  std::vector<std::optional<Result<ConfiguredService>>> slots(services.size());
  pool.parallel_for(services.size(),
                    [&](std::size_t i) { slots[i] = configure_one(services[i], surfaces); });

  std::vector<ConfiguredService> configured;
  configured.reserve(services.size());
  for (auto& slot : slots) {
    PARVA_CHECK(slot.has_value(), "parallel configure left a slot unfilled");
    if (!slot->ok()) return slot->error();
    configured.push_back(std::move(*slot).value());
  }
  return configured;
}

}  // namespace parva::core
