#include "core/allocator.hpp"

#include <algorithm>
#include <cmath>

namespace parva::core {

void SegmentAllocator::enqueue(SegmentQueues& queues, int service_id, const Triplet& triplet) {
  queues[triplet.gpcs].push_back(Segment{service_id, triplet});
}

void SegmentAllocator::enqueue_service(SegmentQueues& queues, const ConfiguredService& service) {
  for (int i = 0; i < service.num_opt_seg; ++i) {
    enqueue(queues, service.spec.id, service.opt_seg);
  }
  if (service.last_seg.has_value()) {
    enqueue(queues, service.spec.id, *service.last_seg);
  }
}

void SegmentAllocator::run_allocation(SegmentQueues& queues, DeploymentPlan& plan) {
  // Largest-size queues first (std::greater key order), first-fit front to
  // back across GPUs; find_start_slot applies the slot-preference rules.
  for (auto& [gpcs, queue] : queues) {
    while (!queue.empty()) {
      Segment segment = std::move(queue.front());
      queue.pop_front();
      plan.place_first_fit(segment.service_id, segment.triplet);
    }
  }
  queues.clear();
}

Result<DeploymentPlan> SegmentAllocator::segment_relocation(
    std::span<const ConfiguredService> services) const {
  SegmentQueues queues;
  for (const ConfiguredService& service : services) {
    if (service.num_opt_seg > 0 && !service.opt_seg.valid()) {
      return Error(ErrorCode::kInternal,
                   "service " + std::to_string(service.spec.id) + " lacks an optimal segment");
    }
    enqueue_service(queues, service);
  }
  DeploymentPlan plan;
  run_allocation(queues, plan);
  return plan;
}

std::vector<Triplet> SegmentAllocator::small_segments(const ConfiguredService& service,
                                                      double rate) {
  const auto& small1 = service.opt_tri_array[0];  // 1-GPC triplet
  const auto& small2 = service.opt_tri_array[1];  // 2-GPC triplet
  std::vector<Triplet> out;
  if (rate <= 0.0) return out;
  if (!small1.has_value() && !small2.has_value()) return out;

  // Bulk phase: take the GPC-efficient small triplet while the remaining
  // rate exceeds what a single final segment could cover.
  const Triplet* bulk = nullptr;
  if (small1.has_value() && small2.has_value()) {
    bulk = small1->throughput_per_gpc() >= small2->throughput_per_gpc() ? &*small1 : &*small2;
  } else {
    bulk = small1.has_value() ? &*small1 : &*small2;
  }
  const double largest_tp = std::max(small1.has_value() ? small1->throughput : 0.0,
                                     small2.has_value() ? small2->throughput : 0.0);
  double remaining = rate;
  while (remaining > largest_tp) {
    out.push_back(*bulk);
    remaining -= bulk->throughput;
  }
  // Final phase: smallest small segment covering the remainder.
  if (remaining > 0.0) {
    if (small1.has_value() && small1->throughput >= remaining) {
      out.push_back(*small1);
    } else if (small2.has_value() && small2->throughput >= remaining) {
      out.push_back(*small2);
    } else if (small1.has_value() || small2.has_value()) {
      // Remaining exceeds both; the loop above guarantees this cannot
      // happen, but cover it defensively with the larger option.
      out.push_back(largest_tp == (small1.has_value() ? small1->throughput : -1.0) ? *small1
                                                                                   : *small2);
    }
  }
  return out;
}

DeploymentPlan SegmentAllocator::allocation_optimization(
    DeploymentPlan plan, std::span<const ConfiguredService> services) const {
  auto find_service = [&](int id) -> const ConfiguredService* {
    for (const ConfiguredService& service : services) {
      if (service.spec.id == id) return &service;
    }
    return nullptr;
  };

  const std::size_t before = plan.gpus_in_use();
  DeploymentPlan candidate = plan;

  // freed_rate ledger, indexed by service id; surplus capacity from one
  // GPU's re-expression carries (as a negative balance) into the next.
  std::map<int, double> freed_rate;

  for (std::size_t gi = candidate.gpu_count(); gi-- > 0;) {
    GpuPlan& gpu = candidate.gpu(gi);
    if (gpu.empty()) continue;
    if (gpu.allocated_gpcs() > options_.optimization_threshold_gpcs) continue;

    SegmentQueues queues;
    // Free segments whose service can be re-expressed with small triplets;
    // segments of services lacking size-1/2 triplets stay in place.
    for (std::size_t si = gpu.segments().size(); si-- > 0;) {
      const PlacedSegment& placed = gpu.segments()[si];
      const ConfiguredService* service = find_service(placed.service_id);
      if (service == nullptr) continue;
      if (!service->opt_tri_array[0].has_value() && !service->opt_tri_array[1].has_value()) {
        continue;  // SMALLSEGMENTS would come back empty; keep the segment
      }
      const PlacedSegment freed = gpu.remove_segment(si);
      freed_rate[service->spec.id] += freed.triplet.throughput;
      for (const Triplet& small : small_segments(*service, freed_rate[service->spec.id])) {
        freed_rate[service->spec.id] -= small.throughput;
        enqueue(queues, service->spec.id, small);
      }
    }
    // Reallocate the small segments; ALLOCATION scans from the front, so
    // they sink into earlier gaps when any exist.
    run_allocation(queues, candidate);
  }

  candidate.compact();
  if (candidate.gpus_in_use() <= before) return candidate;
  plan.compact();
  return plan;
}

Result<DeploymentPlan> SegmentAllocator::allocate(
    std::span<const ConfiguredService> services) const {
  auto relocated = segment_relocation(services);
  if (!relocated.ok()) return relocated;
  if (!options_.optimize) {
    DeploymentPlan plan = std::move(relocated).value();
    plan.compact();
    return plan;
  }
  return allocation_optimization(std::move(relocated).value(), services);
}

Status SegmentAllocator::place_service(DeploymentPlan& plan,
                                       const ConfiguredService& service) const {
  SegmentQueues queues;
  enqueue_service(queues, service);
  run_allocation(queues, plan);
  return Status::Ok();
}

}  // namespace parva::core
