// Service and segment vocabulary of the paper (Tables II & III).
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "profiler/profile_types.hpp"

namespace parva::core {

/// Generative-LLM request shape attached to a service. Token counts are
/// drawn per request from a clamped lognormal: exp(N(log(mean) - s^2/2, s))
/// rounded and clamped to [1, max], so `*_mean` is the expected count. A
/// mean of zero produces zero tokens for that phase without consuming any
/// random variates (the degenerate fixed-latency contract, DESIGN.md §4.7).
struct LlmWorkload {
  double prompt_tokens_mean = 0.0;   ///< expected prompt length (0: none)
  double prompt_tokens_sigma = 0.0;  ///< lognormal sigma (log-space)
  int prompt_tokens_max = 8192;      ///< hard clamp on drawn prompt length
  double gen_tokens_mean = 0.0;      ///< expected generation length (0: none)
  double gen_tokens_sigma = 0.0;     ///< lognormal sigma (log-space)
  int gen_tokens_max = 2048;         ///< hard clamp on drawn generation
  /// KV-cache footprint per resident token in bytes; 0 disables the
  /// per-instance memory ledger entirely.
  double kv_bytes_per_token = 0.0;
};

/// A client-registered inference service: model + SLO + request rate.
struct ServiceSpec {
  int id = -1;
  std::string model;
  double slo_latency_ms = 0.0;  ///< end-to-end SLO latency target
  double request_rate = 0.0;    ///< requests/s the service must sustain
  /// Generative workload descriptor; disengaged for the fixed-latency
  /// CNN models of Table IV (the scheduler ignores it — sizing always
  /// uses the profiled WorkloadTraits surface).
  std::optional<LlmWorkload> llm;
};

/// An operating triplet (instance size, batch size, process count) together
/// with its profiled performance. A triplet materialised on a GPU becomes a
/// "GPU segment" (an MPS-activated MIG instance).
struct Triplet {
  int gpcs = 0;
  int batch = 0;
  int procs = 0;
  double throughput = 0.0;
  double latency_ms = 0.0;
  double sm_occupancy = 0.0;
  double memory_gib = 0.0;

  bool valid() const { return gpcs > 0; }
  /// GPC efficiency: the quantity Demand Matching maximises (Eq. 2).
  double throughput_per_gpc() const {
    return gpcs == 0 ? 0.0 : throughput / static_cast<double>(gpcs);
  }
};

/// Builds a Triplet from a profiled point.
Triplet to_triplet(const profiler::ProfilePoint& point);

/// Index of an instance size within the optimal-triplet array.
/// Sizes {1,2,3,4,7} map to indices {0,1,2,3,4}.
int instance_size_index(int gpcs);
int instance_size_from_index(int index);
inline constexpr int kInstanceSizeCount = 5;

/// A service after the Segment Configurator ran (Table II's member
/// variables: opt_tri_array, opt_seg, num_opt_seg, last_seg).
struct ConfiguredService {
  ServiceSpec spec;
  /// Best triplet per instance size under the internal latency bound;
  /// nullopt where no feasible point exists (e.g. OOM or SLO too strict).
  std::array<std::optional<Triplet>, kInstanceSizeCount> opt_tri_array;
  /// The GPC-efficiency-optimal triplet (Demand Matching).
  Triplet opt_seg;
  /// How many optimal segments the request rate requires.
  int num_opt_seg = 0;
  /// The segment covering the remaining rate; nullopt when the rate divides
  /// exactly.
  std::optional<Triplet> last_seg;

  /// Total GPCs the configuration consumes.
  int total_gpcs() const {
    int total = num_opt_seg * opt_seg.gpcs;
    if (last_seg.has_value()) total += last_seg->gpcs;
    return total;
  }
  /// Aggregate configured throughput.
  double total_throughput() const {
    double total = static_cast<double>(num_opt_seg) * opt_seg.throughput;
    if (last_seg.has_value()) total += last_seg->throughput;
    return total;
  }
};

/// One segment awaiting placement: which service it serves and at which
/// operating point.
struct Segment {
  int service_id = -1;
  Triplet triplet;
};

}  // namespace parva::core
