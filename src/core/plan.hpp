// The deployment map the GPU Segment Allocator produces: per-GPU segment
// placements validated against the MIG geometry (Table III's GPU object).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/service.hpp"
#include "gpu/mig_geometry.hpp"

namespace parva::core {

/// A segment pinned to a concrete placement on one GPU.
struct PlacedSegment {
  int service_id = -1;
  Triplet triplet;
  gpu::Placement placement;
};

/// One GPU in the deployment map.
class GpuPlan {
 public:
  explicit GpuPlan(int id) : id_(id) {}

  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  std::uint8_t occupied_mask() const { return occupied_mask_; }
  const std::vector<PlacedSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  /// GPCs allocated to segments (Table III num_gpcs).
  int allocated_gpcs() const;

  /// Slots this GPU has blocked (allocated plus geometry-unusable).
  int occupied_slots() const;

  bool can_fit(int gpcs) const {
    return gpu::find_start_slot(occupied_mask_, gpcs).has_value();
  }

  /// Places a segment at the first preferred legal slot; false if none.
  bool try_place(int service_id, const Triplet& triplet);

  /// Places a segment at an explicit start slot; false when the placement
  /// is illegal or overlaps. Lets baselines use their own slot orders.
  bool try_place_at(int service_id, const Triplet& triplet, int start_slot);

  /// Removes the segment at `index`, releasing its slots.
  PlacedSegment remove_segment(std::size_t index);

  std::string to_string() const;

 private:
  int id_;
  std::uint8_t occupied_mask_ = 0;
  std::vector<PlacedSegment> segments_;
};

/// The full deployment map across GPUs.
class DeploymentPlan {
 public:
  std::size_t gpu_count() const { return gpus_.size(); }
  const std::vector<GpuPlan>& gpus() const { return gpus_; }
  std::vector<GpuPlan>& gpus() { return gpus_; }

  GpuPlan& gpu(std::size_t index) { return gpus_.at(index); }
  const GpuPlan& gpu(std::size_t index) const { return gpus_.at(index); }

  /// Places a segment on the first GPU (front to back) that fits it,
  /// appending a new GPU when none does. Returns the GPU index used.
  std::size_t place_first_fit(int service_id, const Triplet& triplet);

  /// Drops empty GPUs and renumbers the rest contiguously.
  void compact();

  /// Total GPCs allocated across all GPUs.
  int total_allocated_gpcs() const;
  /// GPUs holding at least one segment.
  std::size_t gpus_in_use() const;

  /// All placed segments (gpu index, segment).
  std::vector<std::pair<std::size_t, const PlacedSegment*>> all_segments() const;

  std::string to_string() const;

 private:
  std::vector<GpuPlan> gpus_;
};

}  // namespace parva::core
