#include "core/live_update.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"

namespace parva::core {
namespace {

/// Identity of a deployed unit for diffing purposes.
struct UnitKey {
  int service_id;
  int gpu_index;
  int gpcs;
  int start_slot;
  int batch;
  int procs;
  auto operator<=>(const UnitKey&) const = default;
};

UnitKey key_of(const DeployedUnit& unit) {
  return UnitKey{unit.service_id,
                 unit.gpu_index,
                 unit.placement.has_value() ? unit.placement->gpcs : -1,
                 unit.placement.has_value() ? unit.placement->start_slot : -1,
                 unit.batch,
                 unit.procs};
}

}  // namespace

Result<LiveUpdateReport> LiveUpdater::apply(const Deployment& current, DeployedState& state,
                                            const Deployment& target,
                                            UpdateStrategy strategy) {
  if (!current.uses_mig || !target.uses_mig) {
    return Error(ErrorCode::kUnsupported, "live update operates on MIG-backed deployments");
  }
  if (state.unit_instances.size() != current.units.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "DeployedState does not match the current deployment");
  }

  LiveUpdateReport report;

  // Diff: units present in both maps stay untouched; the rest are
  // removed/added. Duplicate keys are matched one-to-one.
  std::multiset<UnitKey> target_keys;
  for (const DeployedUnit& unit : target.units) target_keys.insert(key_of(unit));

  std::vector<std::size_t> to_remove;          // indices into current.units
  std::multiset<UnitKey> kept_keys;
  std::vector<gpu::GlobalInstanceId> kept_instances;
  std::vector<const DeployedUnit*> kept_units;
  for (std::size_t i = 0; i < current.units.size(); ++i) {
    const UnitKey key = key_of(current.units[i]);
    const auto it = target_keys.find(key);
    if (it != target_keys.end()) {
      target_keys.erase(it);
      kept_keys.insert(key);
      kept_instances.push_back(state.unit_instances[i]);
      kept_units.push_back(&current.units[i]);
      ++report.untouched_units;
    } else {
      to_remove.push_back(i);
    }
  }
  std::vector<const DeployedUnit*> to_add;  // units of target not yet live
  {
    std::multiset<UnitKey> remaining = target_keys;
    for (const DeployedUnit& unit : target.units) {
      const auto it = remaining.find(key_of(unit));
      if (it != remaining.end()) {
        remaining.erase(it);
        to_add.push_back(&unit);
      }
    }
  }
  report.removed_units = static_cast<int>(to_remove.size());
  report.added_units = static_cast<int>(to_add.size());

  // Services whose serving set changes.
  std::set<int> affected;
  for (std::size_t i : to_remove) affected.insert(current.units[i].service_id);
  for (const DeployedUnit* unit : to_add) affected.insert(unit->service_id);

  // Phase 0 (shadowed only): clone one serving segment per affected
  // service onto the spare pool (GPUs beyond the target's footprint).
  const double per_unit_create =
      costs_.create_instance_ms + costs_.start_mps_ms + costs_.launch_process_ms;
  std::map<int, gpu::GlobalInstanceId> shadows;
  int spare_gpu = std::max(current.gpu_count, target.gpu_count);
  if (strategy == UpdateStrategy::kShadowed) {
    for (int service_id : affected) {
      // Template: any current unit of the service (prefer the smallest so
      // the shadow is cheap); new services have nothing to shadow.
      const DeployedUnit* tmpl = nullptr;
      for (const DeployedUnit& unit : current.units) {
        if (unit.service_id != service_id) continue;
        if (tmpl == nullptr || unit.gpc_grant < tmpl->gpc_grant) tmpl = &unit;
      }
      if (tmpl == nullptr) continue;

      Deployment shadow;
      shadow.uses_mig = true;
      shadow.gpu_count = spare_gpu + 1;
      DeployedUnit clone = *tmpl;
      clone.gpu_index = spare_gpu;
      clone.placement = gpu::Placement{tmpl->placement->gpcs, 0};
      // Place at the profile's first legal slot on the empty spare GPU.
      clone.placement->start_slot = gpu::legal_start_slots(clone.placement->gpcs).front();
      shadow.units.push_back(clone);
      auto deployed = deployer_->deploy(shadow);
      if (!deployed.ok()) continue;  // no spare capacity: in-place fallback
      shadows[service_id] = deployed.value().unit_instances.front();
      ++report.shadow_units;
      ++spare_gpu;
      report.makespan_ms += per_unit_create;
    }
  }

  // Phase 1: tear down the replaced segments (per-service downtime starts
  // here for unshadowed services).
  std::map<int, double> window_ms;  // rebuild window per service
  for (std::size_t i : to_remove) {
    const DeployedUnit& unit = current.units[i];
    const auto kill_ret = deployer_->nvml().kill_processes(state.unit_instances[i]);
    if (kill_ret != gpu::NvmlReturn::kSuccess) {
      // Keep going: destroy below reclaims the slice even if the kill failed.
      PARVA_LOG_WARN << "live update: kill_processes failed on gpu "
                     << state.unit_instances[i].gpu << ": "
                     << gpu::nvml_error_string(kill_ret);
    }
    const auto ret = deployer_->nvml().destroy_gpu_instance(state.unit_instances[i]);
    if (ret != gpu::NvmlReturn::kSuccess) {
      return Error(ErrorCode::kInternal, std::string("teardown failed: ") +
                                             gpu::nvml_error_string(ret));
    }
    window_ms[unit.service_id] += costs_.destroy_instance_ms;
  }

  // Phase 2: build the new segments.
  Deployment additions;
  additions.uses_mig = true;
  additions.gpu_count = target.gpu_count;
  for (const DeployedUnit* unit : to_add) additions.units.push_back(*unit);
  auto added = deployer_->deploy(additions);
  if (!added.ok()) return added.error();
  for (const DeployedUnit* unit : to_add) {
    window_ms[unit->service_id] += per_unit_create;
  }

  // Phase 3: drop the shadows (their teardown happens after traffic has
  // shifted back; it adds makespan but no downtime).
  for (const auto& [service_id, instance] : shadows) {
    const auto kill_ret = deployer_->nvml().kill_processes(instance);
    const auto destroy_ret = deployer_->nvml().destroy_gpu_instance(instance);
    if (kill_ret != gpu::NvmlReturn::kSuccess ||
        destroy_ret != gpu::NvmlReturn::kSuccess) {
      // Shadow teardown happens after traffic has shifted back, so a failure
      // leaks a slice but cannot affect serving: count it and keep going.
      ++report.shadow_teardown_failures;
      PARVA_LOG_WARN << "live update: shadow teardown failed for service " << service_id
                     << " (kill=" << gpu::nvml_error_string(kill_ret)
                     << ", destroy=" << gpu::nvml_error_string(destroy_ret) << ")";
    }
    report.makespan_ms += costs_.destroy_instance_ms;
  }

  // Accounting: shadowed services keep serving through the window.
  for (int service_id : affected) {
    const bool shadowed = shadows.count(service_id) != 0;
    report.downtime_ms[service_id] = shadowed ? 0.0 : window_ms[service_id];
    report.makespan_ms += window_ms[service_id];
  }

  // New state: kept instances plus the additions, ordered as target.units.
  DeployedState next;
  next.unit_instances.resize(target.units.size());
  std::vector<bool> filled(target.units.size(), false);
  // Match kept units to target slots.
  for (std::size_t k = 0; k < kept_units.size(); ++k) {
    const UnitKey key = key_of(*kept_units[k]);
    for (std::size_t t = 0; t < target.units.size(); ++t) {
      if (filled[t]) continue;
      if (key_of(target.units[t]) == key) {
        next.unit_instances[t] = kept_instances[k];
        filled[t] = true;
        break;
      }
    }
  }
  // Match added units in order.
  std::size_t add_cursor = 0;
  for (std::size_t t = 0; t < target.units.size(); ++t) {
    if (filled[t]) continue;
    PARVA_CHECK(add_cursor < added.value().unit_instances.size(),
                "added instance bookkeeping mismatch");
    next.unit_instances[t] = added.value().unit_instances[add_cursor++];
    filled[t] = true;
  }
  state = std::move(next);
  return report;
}

}  // namespace parva::core
