#include "core/parvagpu.hpp"

#include <chrono>
#include <string>

namespace parva::core {
namespace {

ConfiguratorOptions make_configurator_options(const ParvaGpuOptions& options) {
  ConfiguratorOptions out;
  out.internal_latency_factor = options.internal_latency_factor;
  out.max_processes = options.use_mps ? 3 : 1;
  return out;
}

AllocatorOptions make_allocator_options(const ParvaGpuOptions& options) {
  AllocatorOptions out;
  out.optimization_threshold_gpcs = options.optimization_threshold_gpcs;
  out.optimize = options.optimize_allocation;
  return out;
}

}  // namespace

ParvaGpuScheduler::ParvaGpuScheduler(const profiler::ProfileSet& profiles,
                                     ParvaGpuOptions options)
    : profiles_(&profiles),
      surfaces_(profiles),
      options_(options),
      configurator_(make_configurator_options(options)),
      allocator_(make_allocator_options(options)) {}

std::string ParvaGpuScheduler::name() const {
  if (!options_.use_mps) return "ParvaGPU-single";
  if (!options_.optimize_allocation) return "ParvaGPU-unoptimized";
  return "ParvaGPU";
}

Deployment ParvaGpuScheduler::to_deployment(const DeploymentPlan& plan,
                                            std::string framework_name) {
  Deployment deployment;
  deployment.framework = std::move(framework_name);
  deployment.uses_mig = true;
  deployment.gpu_count = static_cast<int>(plan.gpus_in_use());
  for (const auto& [gpu_index, placed] : plan.all_segments()) {
    DeployedUnit unit;
    unit.service_id = placed->service_id;
    unit.gpu_index = static_cast<int>(gpu_index);
    unit.gpc_grant = static_cast<double>(placed->triplet.gpcs);
    unit.placement = placed->placement;
    unit.batch = placed->triplet.batch;
    unit.procs = placed->triplet.procs;
    unit.planned_throughput = placed->triplet.throughput;
    unit.planned_latency_ms = placed->triplet.latency_ms;
    unit.actual_throughput = placed->triplet.throughput;  // MIG: no interference
    unit.actual_latency_ms = placed->triplet.latency_ms;
    unit.sm_occupancy = placed->triplet.sm_occupancy;
    unit.memory_gib = placed->triplet.memory_gib;
    deployment.units.push_back(std::move(unit));
  }
  return deployment;
}

Result<ScheduleResult> ParvaGpuScheduler::schedule(std::span<const ServiceSpec> services) {
  const auto start = std::chrono::steady_clock::now();

  const bool parallel =
      options_.pool != nullptr && services.size() >= options_.parallel_threshold;
  auto configured = parallel ? configurator_.configure(services, surfaces_, *options_.pool)
                             : configurator_.configure(services, surfaces_);
  if (!configured.ok()) return configured.error();
  auto plan = allocator_.allocate(configured.value());
  if (!plan.ok()) return plan.error();

  const auto stop = std::chrono::steady_clock::now();

  last_configured_ = std::move(configured).value();
  last_plan_ = std::move(plan).value();

  ScheduleResult result;
  result.deployment = to_deployment(last_plan_, name());
  for (auto& unit : result.deployment.units) {
    for (const ConfiguredService& service : last_configured_) {
      if (service.spec.id == unit.service_id) {
        unit.model = service.spec.model;
        break;
      }
    }
  }
  result.scheduling_delay_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();

  if (options_.telemetry != nullptr) {
    options_.telemetry->events().record(
        telemetry::EventKind::kScheduleCompleted, /*t_ms=*/0.0, /*gpu=*/-1,
        /*service_id=*/-1, result.scheduling_delay_ms,
        "services=" + std::to_string(services.size()) +
            " gpus=" + std::to_string(result.deployment.gpu_count));
    telemetry::MetricsRegistry& m = options_.telemetry->metrics();
    m.counter("parva_schedule_runs_total", "Full scheduling runs completed").inc();
    m.counter("parva_schedule_services_total", "Services configured across runs")
        .inc(static_cast<double>(services.size()));
    m.gauge("parva_schedule_fleet_gpus", "GPUs required by the latest plan")
        .set(static_cast<double>(result.deployment.gpu_count));
  }
  return result;
}

}  // namespace parva::core
