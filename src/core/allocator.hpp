// The GPU Segment Allocator (paper Algorithm 2).
//
// Stage 1 — Segment Relocation: enqueue every service's segments into
// per-size queues, then ALLOCATION drains the queues largest-size-first,
// placing each segment on the first GPU (front to back) with a legal free
// slot under the Section III-E1 preference rules.
//
// Stage 2 — Allocation Optimization: walk GPUs from the back; on each GPU
// whose allocated GPC count is at or below the threshold (default 4,
// heuristically optimal per the paper), free its segments, re-express the
// freed throughput as size-1/2 segments from the service's optimal-triplet
// array, and re-run ALLOCATION so the small segments sink into earlier
// gaps. Surplus small-segment capacity carries to the next freed GPU
// through the freed_rate ledger. The optimized map is kept only when it
// does not use more GPUs than the relocation map (it cannot, but the guard
// makes the invariant explicit).
#pragma once

#include <deque>
#include <map>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "core/plan.hpp"
#include "core/service.hpp"

namespace parva::core {

struct AllocatorOptions {
  /// GPUs with at most this many allocated GPCs are treated as fragmented
  /// and dissolved by Allocation Optimization (paper fixes 4).
  int optimization_threshold_gpcs = 4;
  /// Disables stage 2, reproducing ParvaGPU-unoptimized.
  bool optimize = true;
};

class SegmentAllocator {
 public:
  explicit SegmentAllocator(AllocatorOptions options = {}) : options_(options) {}

  const AllocatorOptions& options() const { return options_; }

  /// Full Algorithm 2: relocation followed by optimization.
  [[nodiscard]] Result<DeploymentPlan> allocate(std::span<const ConfiguredService> services) const;

  /// Stage 1 only (exposed for tests and the unoptimized variant).
  [[nodiscard]] Result<DeploymentPlan> segment_relocation(std::span<const ConfiguredService> services) const;

  /// Stage 2 only, applied to an existing map.
  DeploymentPlan allocation_optimization(DeploymentPlan plan,
                                         std::span<const ConfiguredService> services) const;

  /// Incremental placement used by the reconfiguration path (Section
  /// III-F): places one service's segments into an existing map without
  /// disturbing other services.
  [[nodiscard]] Status place_service(DeploymentPlan& plan, const ConfiguredService& service) const;

 private:
  /// Size-indexed segment queues (key = gpcs, drained in descending order).
  using SegmentQueues = std::map<int, std::deque<Segment>, std::greater<int>>;

  static void enqueue(SegmentQueues& queues, int service_id, const Triplet& triplet);
  static void enqueue_service(SegmentQueues& queues, const ConfiguredService& service);
  /// The ALLOCATION function: drains queues into the plan.
  static void run_allocation(SegmentQueues& queues, DeploymentPlan& plan);

  /// SMALLSEGMENTS: size-1/2 segments from the service's triplet array
  /// covering `rate`; empty when the service has no small triplet.
  static std::vector<Triplet> small_segments(const ConfiguredService& service, double rate);

  AllocatorOptions options_;
};

}  // namespace parva::core
