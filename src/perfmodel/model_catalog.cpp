#include "perfmodel/model_catalog.hpp"

#include "common/error.hpp"

namespace parva::perfmodel {
namespace {

std::vector<WorkloadTraits> builtin_traits() {
  // name, params(M), GFLOPs, w0, w1, pi0, pi1, host_ms, mem0, mem1, mem_int
  // w1 values are calibrated so each model's small-instance capacity under
  // the Table IV latency bounds tracks the paper's per-scenario rate units
  // (the paper derived its rates from real profiling results, which is why
  // e.g. S4 rates are almost exactly 3x the S3 half-rates); see
  // EXPERIMENTS.md "Calibration".
  // The DenseNet/MobileNet families are launch-bound on large instances: a
  // single process exposes little parallelism (small pi0), so MPS process
  // stacking buys real throughput there — the effect behind the paper's
  // ParvaGPU vs ParvaGPU-single gap under tight SLOs (S4-S6).
  return {
      {"bert-large",   330.0, 80.0, 3.0, 40.20, 0.50, 0.40, 2.5, 2.80, 0.120, 0.45},
      {"densenet-121",   8.0,  2.9, 2.2,  2.37, 0.06, 0.30, 2.0, 1.10, 0.030, 0.35},
      {"densenet-169",  14.1,  3.4, 2.8,  2.70, 0.06, 0.30, 2.1, 1.20, 0.035, 0.35},
      {"densenet-201",  20.0,  4.3, 3.2,  3.08, 0.065,0.30, 2.2, 1.25, 0.040, 0.35},
      {"inceptionv3",   27.2,  5.7, 1.2,  1.73, 0.20, 0.31, 1.5, 1.30, 0.045, 0.30},
      {"mobilenetv2",    3.5,  0.3, 1.0,  1.13, 0.03, 0.20, 1.6, 1.00, 0.020, 0.25},
      {"resnet-101",    44.5,  7.8, 2.0,  2.25, 0.22, 0.32, 1.5, 1.40, 0.050, 0.30},
      {"resnet-152",    60.2, 11.5, 2.8,  3.06, 0.22, 0.32, 1.6, 1.50, 0.055, 0.30},
      {"resnet-50",     25.6,  4.1, 1.1,  1.086,0.20, 0.30, 1.2, 1.30, 0.040, 0.30},
      {"vgg-16",       138.4, 15.5, 0.8,  2.24, 0.45, 0.50, 1.8, 1.90, 0.060, 0.40},
      {"vgg-19",       143.7, 19.6, 0.9,  2.60, 0.45, 0.50, 1.8, 2.00, 0.065, 0.40},
  };
}

std::vector<WorkloadTraits> llm_workload_traits() {
  // Scheduler-facing view of the generative models (llm_model.cpp holds
  // the token-level calibration these rows derive from). w1 is the
  // per-request GPC-cost at the reference shape:
  //   ref_prompt / prefill_tok_per_s_1g + ref_gen / saturated_decode_per_gpc
  // in milliseconds (e.g. llama-7b: 512/4000 + 160/170.7 tokens-per-ms
  // -> 128 + 937 = 1065 GPC-ms). Small pi0: a single decode stream keeps
  // only a sliver of a big instance busy, so batching (and sometimes MPS
  // stacking) is where throughput comes from. mem0 covers resident
  // weights + context per process; mem1 approximates the KV footprint of
  // one reference-shaped in-flight request.
  return {
      {"llama-3b",   3000.0,  2100.0, 4.0,  403.0, 0.28, 0.30, 4.0,  6.8, 0.033, 0.60},
      {"llama-7b",   6700.0,  9000.0, 6.0, 1066.0, 0.30, 0.30, 5.0, 13.8, 0.100, 0.65},
      {"llama-13b", 13000.0, 43000.0, 8.0, 1898.0, 0.32, 0.30, 6.0, 25.3, 0.390, 0.70},
  };
}

}  // namespace

const ModelCatalog& ModelCatalog::builtin() {
  static const ModelCatalog catalog(builtin_traits());
  return catalog;
}

const ModelCatalog& ModelCatalog::with_llm() {
  static const ModelCatalog catalog([] {
    std::vector<WorkloadTraits> traits = builtin_traits();
    for (auto& llm : llm_workload_traits()) traits.push_back(std::move(llm));
    return traits;
  }());
  return catalog;
}

ModelCatalog::ModelCatalog(std::vector<WorkloadTraits> traits) : traits_(std::move(traits)) {}

const WorkloadTraits* ModelCatalog::find(std::string_view name) const {
  for (const auto& traits : traits_) {
    if (traits.name == name) return &traits;
  }
  return nullptr;
}

const WorkloadTraits& ModelCatalog::at(std::string_view name) const {
  const WorkloadTraits* traits = find(name);
  PARVA_REQUIRE(traits != nullptr, "unknown model: " + std::string(name));
  return *traits;
}

std::vector<std::string> ModelCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(traits_.size());
  for (const auto& traits : traits_) out.push_back(traits.name);
  return out;
}

}  // namespace parva::perfmodel
