#include "perfmodel/model_catalog.hpp"

#include "common/error.hpp"

namespace parva::perfmodel {
namespace {

std::vector<WorkloadTraits> builtin_traits() {
  // name, params(M), GFLOPs, w0, w1, pi0, pi1, host_ms, mem0, mem1, mem_int
  // w1 values are calibrated so each model's small-instance capacity under
  // the Table IV latency bounds tracks the paper's per-scenario rate units
  // (the paper derived its rates from real profiling results, which is why
  // e.g. S4 rates are almost exactly 3x the S3 half-rates); see
  // EXPERIMENTS.md "Calibration".
  // The DenseNet/MobileNet families are launch-bound on large instances: a
  // single process exposes little parallelism (small pi0), so MPS process
  // stacking buys real throughput there — the effect behind the paper's
  // ParvaGPU vs ParvaGPU-single gap under tight SLOs (S4-S6).
  return {
      {"bert-large",   330.0, 80.0, 3.0, 40.20, 0.50, 0.40, 2.5, 2.80, 0.120, 0.45},
      {"densenet-121",   8.0,  2.9, 2.2,  2.37, 0.06, 0.30, 2.0, 1.10, 0.030, 0.35},
      {"densenet-169",  14.1,  3.4, 2.8,  2.70, 0.06, 0.30, 2.1, 1.20, 0.035, 0.35},
      {"densenet-201",  20.0,  4.3, 3.2,  3.08, 0.065,0.30, 2.2, 1.25, 0.040, 0.35},
      {"inceptionv3",   27.2,  5.7, 1.2,  1.73, 0.20, 0.31, 1.5, 1.30, 0.045, 0.30},
      {"mobilenetv2",    3.5,  0.3, 1.0,  1.13, 0.03, 0.20, 1.6, 1.00, 0.020, 0.25},
      {"resnet-101",    44.5,  7.8, 2.0,  2.25, 0.22, 0.32, 1.5, 1.40, 0.050, 0.30},
      {"resnet-152",    60.2, 11.5, 2.8,  3.06, 0.22, 0.32, 1.6, 1.50, 0.055, 0.30},
      {"resnet-50",     25.6,  4.1, 1.1,  1.086,0.20, 0.30, 1.2, 1.30, 0.040, 0.30},
      {"vgg-16",       138.4, 15.5, 0.8,  2.24, 0.45, 0.50, 1.8, 1.90, 0.060, 0.40},
      {"vgg-19",       143.7, 19.6, 0.9,  2.60, 0.45, 0.50, 1.8, 2.00, 0.065, 0.40},
  };
}

}  // namespace

const ModelCatalog& ModelCatalog::builtin() {
  static const ModelCatalog catalog(builtin_traits());
  return catalog;
}

ModelCatalog::ModelCatalog(std::vector<WorkloadTraits> traits) : traits_(std::move(traits)) {}

const WorkloadTraits* ModelCatalog::find(std::string_view name) const {
  for (const auto& traits : traits_) {
    if (traits.name == name) return &traits;
  }
  return nullptr;
}

const WorkloadTraits& ModelCatalog::at(std::string_view name) const {
  const WorkloadTraits* traits = find(name);
  PARVA_REQUIRE(traits != nullptr, "unknown model: " + std::string(name));
  return *traits;
}

std::vector<std::string> ModelCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(traits_.size());
  for (const auto& traits : traits_) out.push_back(traits.name);
  return out;
}

}  // namespace parva::perfmodel
