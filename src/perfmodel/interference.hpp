// Heterogeneous-MPS interference model.
//
// When different workloads share a whole GPU through MPS percentage
// partitions (as gpulet and iGniter do), SM partitioning does not isolate
// the L2 cache or memory controllers; each workload's kernels stretch in
// proportion to the memory pressure of its co-runners (paper Section II-A).
// MIG instances are fully isolated, so ParvaGPU never pays this cost.
//
// The *ground-truth* inflation (used by the discrete-event simulator when it
// executes baseline deployments) is
//
//     inflation_i = kTrueContention * sum_{j != i} mem_intensity_j * f_j
//
// where f_j is the co-runner's GPU fraction. The baselines do not know the
// truth; they carry their published estimators:
//   * gpulet profiles workload pairs but its model generalises imperfectly —
//     we give it a slightly optimistic coefficient, which reproduces its
//     S2 SLO-violation episode (paper Fig. 8).
//   * iGniter's lightweight-profiled model is noisy per pair; iGniter
//     compensates by padding every allocation, which is the source of its
//     internal slack (paper Section II-A).
#pragma once

#include <span>
#include <vector>

#include "perfmodel/model_catalog.hpp"

namespace parva::perfmodel {

/// A co-located workload: its traits and the GPU fraction it occupies.
struct CoRunner {
  const WorkloadTraits* traits = nullptr;
  double gpu_fraction = 0.0;
};

/// Ground-truth contention coefficient.
inline constexpr double kTrueContention = 0.35;
/// gpulet's optimistic estimate (under-predicts interference by ~35%).
inline constexpr double kGpuletContention = 0.22;
/// iGniter's estimate matches in expectation but is noisy per pair.
inline constexpr double kIgniterContention = 0.35;
/// iGniter's per-pair estimation noise (relative, deterministic per pair).
inline constexpr double kIgniterNoise = 0.15;

/// Ground truth: kernel-work inflation experienced by `victim`.
double true_interference(const WorkloadTraits& victim, std::span<const CoRunner> co_runners);

/// gpulet's prediction for the same situation (optimistically biased).
double gpulet_predicted_interference(const WorkloadTraits& victim,
                                     std::span<const CoRunner> co_runners);

/// iGniter's prediction: unbiased coefficient with a deterministic per-pair
/// error (derived from a hash of the pair names, so runs are reproducible).
double igniter_predicted_interference(const WorkloadTraits& victim,
                                      std::span<const CoRunner> co_runners);

}  // namespace parva::perfmodel
