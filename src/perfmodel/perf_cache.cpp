#include "perfmodel/perf_cache.hpp"

namespace parva::perfmodel {

const Result<PerfPoint>& CachedPerfModel::lookup(const Key& key) const {
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  Result<PerfPoint> value =
      key.mig ? model_->evaluate_mig(*key.traits, static_cast<int>(key.grant_bits),
                                     key.batch, key.processes)
              : model_->evaluate_mps_share(*key.traits,
                                           std::bit_cast<double>(key.grant_bits), key.batch,
                                           key.processes,
                                           std::bit_cast<double>(key.inflation_bits));
  return memo_.emplace(key, std::move(value)).first->second;
}

Result<PerfPoint> CachedPerfModel::evaluate_mig(const WorkloadTraits& traits, int gpcs,
                                                int batch, int processes) const {
  Key key;
  key.traits = &traits;
  key.grant_bits = static_cast<std::uint64_t>(static_cast<std::uint32_t>(gpcs));
  key.batch = batch;
  key.processes = processes;
  key.mig = true;
  return lookup(key);
}

Result<PerfPoint> CachedPerfModel::evaluate_mps_share(const WorkloadTraits& traits,
                                                      double gpu_fraction, int batch,
                                                      int processes,
                                                      double interference_inflation) const {
  Key key;
  key.traits = &traits;
  key.grant_bits = std::bit_cast<std::uint64_t>(gpu_fraction);
  key.inflation_bits = std::bit_cast<std::uint64_t>(interference_inflation);
  key.batch = batch;
  key.processes = processes;
  key.mig = false;
  return lookup(key);
}

}  // namespace parva::perfmodel
