// The analytical DNN-inference performance law.
//
// A process serving batches of size b on an instance of g GPCs follows a
// two-regime latency model (serial-limited vs. throughput-limited):
//
//   W(b)  = w0 + w1*b                      kernel work   [GPC-ms]
//   r(b)  = pi1 + pi0*b                    exposed parallelism [GPCs]
//   t_gpu = W(b) / min(g, r(b))            single-process kernel time [ms]
//
// With p homogeneous MPS processes sharing the instance:
//
//   L(g,b,p) = max( t_gpu , p*W(b)/g ) * mps_inflation(p) + host_ms / p
//   T(g,b,p) = 1000 * p * b / L(g,b,p)     [requests/s]
//
// The max() captures the paper's Section III-B observation: when the
// instance is already saturated (small g, large b), extra processes buy
// almost no throughput but multiply latency; when the instance is
// under-occupied (large g, small b), extra processes raise throughput
// superlinearly — the host overhead pipelines away (host_ms/p) — with
// little latency cost.
//
// Out-of-memory: a point is infeasible when p*(mem0 + mem1*b) exceeds the
// instance's memory grant (the holes in the paper's Figure 3).
#pragma once

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpu/arch.hpp"
#include "perfmodel/model_catalog.hpp"

namespace parva::perfmodel {

/// One evaluated operating point.
struct PerfPoint {
  double latency_ms = 0.0;    ///< steady-state per-batch latency
  double throughput = 0.0;    ///< aggregate requests/s across all p processes
  double sm_occupancy = 0.0;  ///< fraction of the instance's SMs kept busy
  double memory_gib = 0.0;    ///< total device memory used by the p processes
};

/// Per-process MPS scheduling overhead: ~2% work inflation per extra client.
inline constexpr double kMpsInflationPerProcess = 0.02;

/// GPU generation: MIG-capable parts share the A100's instance geometry
/// (Ampere through Blackwell, paper Section V) but differ in per-GPC
/// compute rate. The traits are calibrated for the A100; other generations
/// scale the kernel work.
struct GpuGeneration {
  const char* name = "A100-80GB";
  double compute_scale = 1.0;  ///< per-GPC speed relative to A100
};

inline constexpr GpuGeneration kA100{"A100-80GB", 1.0};
inline constexpr GpuGeneration kH100{"H100-80GB", 1.9};

class AnalyticalPerfModel {
 public:
  explicit AnalyticalPerfModel(const ModelCatalog& catalog, GpuGeneration generation = kA100)
      : catalog_(&catalog), generation_(generation) {}

  const ModelCatalog& catalog() const { return *catalog_; }
  const GpuGeneration& generation() const { return generation_; }

  /// Work per batch in GPC-ms.
  static double batch_work_ms(const WorkloadTraits& traits, int batch);
  /// Exposed parallelism in GPCs.
  static double exposed_parallelism(const WorkloadTraits& traits, int batch);
  /// Device memory per process in GiB.
  static double process_memory_gib(const WorkloadTraits& traits, int batch);

  /// Evaluates a MIG operating point (isolated instance, homogeneous MPS).
  /// Fails with kOutOfMemory when the memory grant is exceeded.
  [[nodiscard]] Result<PerfPoint> evaluate_mig(const WorkloadTraits& traits, int gpcs, int batch,
                                 int processes) const;
  [[nodiscard]] Result<PerfPoint> evaluate_mig(std::string_view model, int gpcs, int batch,
                                 int processes) const;

  /// Evaluates an MPS percentage partition on a whole (non-MIG) GPU, as the
  /// gpulet/iGniter baselines use: `gpu_fraction` in (0,1] of the 7 GPCs,
  /// with `interference_inflation` >= 0 from heterogeneous co-runners
  /// stretching the kernel work (MIG isolation makes this 0 for ParvaGPU).
  [[nodiscard]] Result<PerfPoint> evaluate_mps_share(const WorkloadTraits& traits, double gpu_fraction,
                                       int batch, int processes,
                                       double interference_inflation) const;

  /// Samples a noisy execution latency for the discrete-event simulator:
  /// multiplicative jitter around the analytical value (sigma ~3%),
  /// truncated to +-3 sigma. Inline: the simulator calls this once per
  /// batch on its hottest path.
  static double sample_latency_ms(double mean_latency_ms, Rng& rng) {
    double factor = rng.normal(1.0, 0.03);
    factor = std::clamp(factor, 0.91, 1.09);
    return mean_latency_ms * factor;
  }

 private:
  [[nodiscard]] Result<PerfPoint> evaluate(const WorkloadTraits& traits, double effective_gpcs,
                             double memory_grant_gib, int batch, int processes,
                             double interference_inflation) const;

  const ModelCatalog* catalog_;
  GpuGeneration generation_;
};

}  // namespace parva::perfmodel
