#include "perfmodel/analytical_model.hpp"

#include <algorithm>
#include <cmath>

namespace parva::perfmodel {

double AnalyticalPerfModel::batch_work_ms(const WorkloadTraits& traits, int batch) {
  return traits.w0 + traits.w1 * static_cast<double>(batch);
}

double AnalyticalPerfModel::exposed_parallelism(const WorkloadTraits& traits, int batch) {
  return traits.pi1 + traits.pi0 * static_cast<double>(batch);
}

double AnalyticalPerfModel::process_memory_gib(const WorkloadTraits& traits, int batch) {
  return traits.mem0_gib + traits.mem1_gib * static_cast<double>(batch);
}

Result<PerfPoint> AnalyticalPerfModel::evaluate(const WorkloadTraits& traits,
                                                double effective_gpcs, double memory_grant_gib,
                                                int batch, int processes,
                                                double interference_inflation) const {
  PARVA_REQUIRE(batch >= 1, "batch must be positive");
  PARVA_REQUIRE(processes >= 1, "process count must be positive");
  PARVA_REQUIRE(effective_gpcs > 0.0, "instance must have compute");

  const double per_process_mem = process_memory_gib(traits, batch);
  const double total_mem = per_process_mem * static_cast<double>(processes);
  if (total_mem > memory_grant_gib) {
    return Error(ErrorCode::kOutOfMemory,
                 traits.name + ": " + std::to_string(total_mem) + " GiB > grant " +
                     std::to_string(memory_grant_gib) + " GiB");
  }

  const double work =
      batch_work_ms(traits, batch) / generation_.compute_scale * (1.0 + interference_inflation);
  const double parallelism = exposed_parallelism(traits, batch);
  const double usable_gpcs = std::min(effective_gpcs, parallelism);
  const double t_gpu = work / usable_gpcs;                       // serial-limited
  const double t_saturated = static_cast<double>(processes) * work / effective_gpcs;
  const double mps_inflation =
      1.0 + kMpsInflationPerProcess * static_cast<double>(processes - 1);
  const double latency =
      std::max(t_gpu, t_saturated) * mps_inflation + traits.host_ms / static_cast<double>(processes);

  PerfPoint point;
  point.latency_ms = latency;
  point.throughput = 1000.0 * static_cast<double>(processes) * static_cast<double>(batch) / latency;
  // Occupancy: fraction of the instance's compute kept busy in steady state.
  const double per_process_busy = (work / usable_gpcs) * (usable_gpcs / effective_gpcs);
  point.sm_occupancy =
      std::min(1.0, static_cast<double>(processes) * per_process_busy / latency);
  point.memory_gib = total_mem;
  return point;
}

Result<PerfPoint> AnalyticalPerfModel::evaluate_mig(const WorkloadTraits& traits, int gpcs,
                                                    int batch, int processes) const {
  if (!gpu::is_valid_instance_size(gpcs)) {
    return Error(ErrorCode::kInvalidArgument,
                 "invalid MIG instance size " + std::to_string(gpcs));
  }
  return evaluate(traits, static_cast<double>(gpcs), gpu::instance_memory_gib(gpcs), batch,
                  processes, /*interference_inflation=*/0.0);
}

Result<PerfPoint> AnalyticalPerfModel::evaluate_mig(std::string_view model, int gpcs, int batch,
                                                    int processes) const {
  const WorkloadTraits* traits = catalog_->find(model);
  if (traits == nullptr) {
    return Error(ErrorCode::kNotFound, "unknown model " + std::string(model));
  }
  return evaluate_mig(*traits, gpcs, batch, processes);
}

Result<PerfPoint> AnalyticalPerfModel::evaluate_mps_share(const WorkloadTraits& traits,
                                                          double gpu_fraction, int batch,
                                                          int processes,
                                                          double interference_inflation) const {
  if (gpu_fraction <= 0.0 || gpu_fraction > 1.0) {
    return Error(ErrorCode::kInvalidArgument, "gpu_fraction must be in (0, 1]");
  }
  // A percentage partition grants compute proportionally but shares the
  // whole device memory; memory is granted proportionally to the share
  // (the MPS frameworks co-locate at most a few workloads).
  const double effective_gpcs = gpu_fraction * static_cast<double>(gpu::kGpcSlots);
  const double memory = gpu_fraction * gpu::kGpuMemoryGiB;
  return evaluate(traits, effective_gpcs, memory, batch, processes, interference_inflation);
}

}  // namespace parva::perfmodel
