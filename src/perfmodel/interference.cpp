#include "perfmodel/interference.hpp"

#include <functional>

#include "common/error.hpp"

namespace parva::perfmodel {
namespace {

double accumulate(const WorkloadTraits& victim, std::span<const CoRunner> co_runners,
                  double coefficient, bool noisy) {
  double inflation = 0.0;
  for (const CoRunner& other : co_runners) {
    PARVA_REQUIRE(other.traits != nullptr, "co-runner traits must be set");
    if (other.traits->name == victim.name) continue;  // homogeneous sharing is handled by MPS law
    double pair_coefficient = coefficient;
    if (noisy) {
      // Deterministic pseudo-error per (victim, other) pair in
      // [-kIgniterNoise, +kIgniterNoise].
      const std::size_t h = std::hash<std::string>{}(victim.name + "|" + other.traits->name);
      const double unit = static_cast<double>(h % 10007) / 10007.0;  // [0,1)
      pair_coefficient *= 1.0 + kIgniterNoise * (2.0 * unit - 1.0);
    }
    inflation += pair_coefficient * other.traits->mem_intensity * other.gpu_fraction;
  }
  return inflation;
}

}  // namespace

double true_interference(const WorkloadTraits& victim, std::span<const CoRunner> co_runners) {
  return accumulate(victim, co_runners, kTrueContention, /*noisy=*/false);
}

double gpulet_predicted_interference(const WorkloadTraits& victim,
                                     std::span<const CoRunner> co_runners) {
  return accumulate(victim, co_runners, kGpuletContention, /*noisy=*/false);
}

double igniter_predicted_interference(const WorkloadTraits& victim,
                                      std::span<const CoRunner> co_runners) {
  return accumulate(victim, co_runners, kIgniterContention, /*noisy=*/true);
}

}  // namespace parva::perfmodel
