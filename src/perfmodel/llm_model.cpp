#include "perfmodel/llm_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace parva::perfmodel {
namespace {

// Aggregate decode tokens/s per GPC at the saturation knee:
// R(1, k) = d1 * k^2 / (2k - 1). This is the rate the scheduler-facing
// w1 calibration charges decode work at (batching is assumed effective).
double saturated_decode_per_gpc(const LlmTraits& traits) {
  const double k = traits.decode_batch_knee;
  if (traits.decode_tok_per_s_1g <= 0.0 || k <= 0.0) return 0.0;
  return traits.decode_tok_per_s_1g * k * k / (2.0 * k - 1.0);
}

std::vector<LlmTraits> builtin_llm_traits() {
  // name, params(B), weights GiB, prefill t/s/1g, decode t/s/1g (single
  // stream), knee, kv B/token, reference prompt/gen tokens.
  //
  // Rates are A100-MIG-scale fp16 numbers: prefill is compute-bound and
  // scales with GPC count; single-stream decode is bandwidth-bound and
  // slow, recovering throughput only through batching (the knee). KV
  // bytes/token assume GQA-style heads for the small models and denser
  // attention for 13b.
  return {
      {"llama-3b",   3.0,  6.0, 9000.0, 60.0, 8.0, 100.0e3,  256.0,  96.0},
      {"llama-7b",   6.7, 13.0, 4000.0, 40.0, 8.0, 160.0e3,  512.0, 160.0},
      {"llama-13b", 13.0, 24.5, 2200.0, 25.0, 8.0, 250.0e3, 1536.0, 128.0},
  };
}

}  // namespace

const LlmCatalog& LlmCatalog::builtin() {
  static const LlmCatalog catalog(builtin_llm_traits());
  return catalog;
}

LlmCatalog::LlmCatalog(std::vector<LlmTraits> traits) : traits_(std::move(traits)) {}

const LlmTraits* LlmCatalog::find(std::string_view name) const {
  for (const auto& traits : traits_) {
    if (traits.name == name) return &traits;
  }
  return nullptr;
}

const LlmTraits& LlmCatalog::at(std::string_view name) const {
  const LlmTraits* traits = find(name);
  PARVA_REQUIRE(traits != nullptr, "unknown LLM model: " + std::string(name));
  return *traits;
}

const LlmTraits& default_llm_traits() {
  // Mid-size defaults; weight_gib 0 so a synthetic LLM workload on a CNN
  // model never makes its instance memory-infeasible.
  static const LlmTraits traits{"default-llm", 1.0,    0.0,   6000.0, 50.0,
                                8.0,           80.0e3, 256.0, 96.0};
  return traits;
}

double prefill_ms(const LlmTraits& traits, double gpcs, double tokens) {
  if (tokens <= 0.0) return 0.0;
  const double rate = traits.prefill_tok_per_s_1g * std::max(gpcs, 1e-9);
  if (rate <= 0.0) return 0.0;
  return tokens / rate * 1000.0;
}

double decode_tok_per_s(const LlmTraits& traits, double gpcs, int live) {
  if (live <= 0) return 0.0;
  const double k = std::max(traits.decode_batch_knee, 1.0);
  const double n = static_cast<double>(live);
  return traits.decode_tok_per_s_1g * std::max(gpcs, 1e-9) * n * k / (n + k - 1.0);
}

double decode_step_ms(const LlmTraits& traits, double gpcs, int procs,
                      int live, int chunk_tokens) {
  if (live <= 0 || chunk_tokens <= 0) return 0.0;
  const double rate = decode_tok_per_s(traits, gpcs, live);
  if (rate <= 0.0) return 0.0;
  // `chunk * live` tokens advance per step; `procs` processes share the
  // instance's memory bandwidth.
  const double share = rate / static_cast<double>(std::max(procs, 1));
  return static_cast<double>(chunk_tokens) * static_cast<double>(live) / share * 1000.0;
}

double prefill_cost_share(const LlmTraits& traits) {
  const double pre =
      prefill_ms(traits, 1.0, traits.reference_prompt_tokens);
  const double sat = saturated_decode_per_gpc(traits);
  const double dec =
      sat > 0.0 ? traits.reference_gen_tokens / sat * 1000.0 : 0.0;
  const double total = pre + dec;
  if (total <= 0.0) return 1.0;
  return pre / total;
}

}  // namespace parva::perfmodel
