// Memoizing wrapper around AnalyticalPerfModel: the baselines' partition
// searches (gpulet, iGniter, gslice) sweep the same (model, fraction,
// batch) grid once per service, so scenarios with repeated models
// re-evaluate identical operating points many times over. The model is a
// pure function of its arguments, so caching returns bit-identical results
// and only changes wall-clock time.
//
// The cache is per-instance and NOT thread safe: create one per scheduling
// run (the baselines build one at the top of schedule()).
#pragma once

#include <bit>
#include <cstdint>
#include <unordered_map>

#include "perfmodel/analytical_model.hpp"

namespace parva::perfmodel {

class CachedPerfModel {
 public:
  explicit CachedPerfModel(const AnalyticalPerfModel& model) : model_(&model) {}

  const ModelCatalog& catalog() const { return model_->catalog(); }
  const AnalyticalPerfModel& model() const { return *model_; }

  /// Same contract as AnalyticalPerfModel::evaluate_mig, memoized.
  [[nodiscard]] Result<PerfPoint> evaluate_mig(const WorkloadTraits& traits, int gpcs, int batch,
                                 int processes) const;

  /// Same contract as AnalyticalPerfModel::evaluate_mps_share, memoized.
  [[nodiscard]] Result<PerfPoint> evaluate_mps_share(const WorkloadTraits& traits, double gpu_fraction,
                                       int batch, int processes,
                                       double interference_inflation) const;

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

 private:
  struct Key {
    const WorkloadTraits* traits = nullptr;
    /// MIG: the gpcs count. MPS: the gpu_fraction bit pattern.
    std::uint64_t grant_bits = 0;
    /// MPS interference inflation bit pattern (0 for MIG).
    std::uint64_t inflation_bits = 0;
    std::int32_t batch = 0;
    std::int32_t processes = 0;
    bool mig = false;

    bool operator==(const Key& other) const = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      // FNV-1a over the key fields; the traits pointer is stable for the
      // lifetime of the catalog the model wraps.
      std::uint64_t h = 1469598103934665603ULL;
      const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
      };
      mix(std::bit_cast<std::uint64_t>(key.traits));
      mix(key.grant_bits);
      mix(key.inflation_bits);
      mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.batch)) |
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.processes)) << 32));
      mix(key.mig ? 1 : 0);
      return static_cast<std::size_t>(h);
    }
  };

  const Result<PerfPoint>& lookup(const Key& key) const;

  const AnalyticalPerfModel* model_;
  mutable std::unordered_map<Key, Result<PerfPoint>, KeyHash> memo_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

}  // namespace parva::perfmodel
