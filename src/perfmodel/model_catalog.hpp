// The 11 DNN inference workloads of the paper's Table IV, with the
// calibrated analytical-performance traits used by the simulator.
//
// Trait semantics (see analytical_model.hpp for the latency law):
//   w0, w1   — kernel work per batch in GPC-milliseconds: W(b) = w0 + w1*b.
//              w0 captures the serial launch/depth component, w1 the
//              per-item compute.
//   pi0, pi1 — exposed parallelism in "GPCs worth of blocks":
//              r(b) = pi1 + pi0*b. A single process can keep at most
//              min(g, r(b)) GPCs of a g-GPC instance busy.
//   host_ms  — host-side pre/post-processing + PCIe time per batch; with p
//              MPS processes it pipelines and amortises as host_ms / p.
//   mem0,mem1— device-memory footprint per process in GiB: mem0 + mem1*b
//              (weights + CUDA context, plus activation memory per item).
//   mem_intensity — relative L2/DRAM pressure in [0,1]; drives the
//              heterogeneous-MPS interference model used by the gpulet and
//              iGniter baselines (MIG instances are isolated and unaffected).
//
// Calibration anchor: InceptionV3 reproduces the paper's Section III-B
// numbers (354/444/446 req/s and ~11/18/27 ms at g=1,b=4,p=1..3;
// 786/1695/1810 req/s and ~10/9/13 ms at g=4,b=8,p=1..3); the other models
// are scaled by published parameter counts and per-image GFLOPs.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace parva::perfmodel {

struct WorkloadTraits {
  std::string name;
  double params_millions = 0.0;  ///< Table IV "number of parameters"
  double gflops_per_item = 0.0;  ///< approximate forward-pass GFLOPs
  // Analytical performance coefficients.
  double w0 = 0.0;
  double w1 = 0.0;
  double pi0 = 0.0;
  double pi1 = 0.0;
  double host_ms = 0.0;
  double mem0_gib = 0.0;
  double mem1_gib = 0.0;
  double mem_intensity = 0.0;
};

/// Immutable catalog of the paper's 11 workloads.
class ModelCatalog {
 public:
  /// The built-in catalog (Table IV models).
  static const ModelCatalog& builtin();

  /// The built-in catalog plus the generative-LLM family (llm_model.hpp).
  /// The LLM rows charge each request its total token work (prefill +
  /// saturated decode at the reference shape) so Demand Matching sizes
  /// instances correctly; the DES replays the phases explicitly.
  static const ModelCatalog& with_llm();

  /// Constructs a catalog from explicit traits (tests use this).
  explicit ModelCatalog(std::vector<WorkloadTraits> traits);

  const WorkloadTraits* find(std::string_view name) const;
  /// Lookup that throws on unknown model (for internal callers).
  const WorkloadTraits& at(std::string_view name) const;

  std::span<const WorkloadTraits> all() const { return traits_; }
  std::size_t size() const { return traits_.size(); }

  /// Canonical model names, in Table IV order.
  std::vector<std::string> names() const;

 private:
  std::vector<WorkloadTraits> traits_;
};

}  // namespace parva::perfmodel
