// Token-based latency model for generative-LLM workloads.
//
// Fixed-latency CNNs are fully described by the batch latency law in
// analytical_model.hpp. Generative models split a request into two phases
// with different bottlenecks:
//   prefill — compute-bound: the whole prompt is processed in one pass, so
//             throughput scales with instance GPCs:
//                 prefill_ms(g, T) = T / (prefill_tok_per_s_1g * g) * 1000.
//   decode  — memory-bandwidth-bound: each step emits one token per live
//             request. A single stream on a 1-GPC instance sustains
//             `decode_tok_per_s_1g`; batching amortises weight reads up to
//             a saturation knee:
//                 R(g, n) = d1 * g * n * k / (n + k - 1)   tokens/s
//             (R(g,1) = d1*g, R -> d1*g*k as n grows). With p MPS
//             processes sharing the instance each process sees R / p.
//
// The catalog rows double as the calibration source for the scheduler's
// WorkloadTraits view (ModelCatalog::with_llm): w1 there is the per-request
// GPC-cost of a *reference-shaped* request (reference_prompt_tokens prefill
// + reference_gen_tokens decode at the saturated rate), so Demand Matching
// sizes instances by total token work while the DES replays the two phases
// explicitly (DESIGN.md §4.7).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace parva::perfmodel {

/// Calibrated traits of one generative model.
struct LlmTraits {
  std::string name;
  double params_billions = 0.0;
  double weight_gib = 0.0;  ///< resident fp16 weights + context, per process
  double prefill_tok_per_s_1g = 0.0;  ///< prefill rate on a 1-GPC instance
  double decode_tok_per_s_1g = 0.0;   ///< single-stream decode rate on 1 GPC
  double decode_batch_knee = 8.0;     ///< live-request count where decode
                                      ///< throughput saturates
  double kv_bytes_per_token = 0.0;    ///< default KV footprint per token
  double reference_prompt_tokens = 512.0;  ///< shape w1 is calibrated at
  double reference_gen_tokens = 128.0;
};

/// Immutable catalog of the built-in generative models.
class LlmCatalog {
 public:
  static const LlmCatalog& builtin();

  explicit LlmCatalog(std::vector<LlmTraits> traits);

  const LlmTraits* find(std::string_view name) const;
  /// Lookup that throws on unknown model (for internal callers).
  const LlmTraits& at(std::string_view name) const;

  std::span<const LlmTraits> all() const { return traits_; }
  std::size_t size() const { return traits_.size(); }

 private:
  std::vector<LlmTraits> traits_;
};

/// Conservative traits used when a service carries an LlmWorkload but its
/// model has no LlmCatalog entry (e.g. an LLM workload attached to a CNN
/// name in tests).
const LlmTraits& default_llm_traits();

/// Milliseconds to prefill `tokens` prompt tokens on a `gpcs`-GPC instance.
double prefill_ms(const LlmTraits& traits, double gpcs, double tokens);

/// Aggregate decode rate (tokens/s) of one process with `live` in-flight
/// requests on a `gpcs`-GPC instance.
double decode_tok_per_s(const LlmTraits& traits, double gpcs, int live);

/// Milliseconds for one decode step that advances each of `live` requests
/// by `chunk_tokens` tokens, with `procs` MPS processes sharing the
/// instance bandwidth.
double decode_step_ms(const LlmTraits& traits, double gpcs, int procs,
                      int live, int chunk_tokens);

/// Fraction of a reference-shaped request's GPC-cost spent in prefill;
/// used to split the profiled batch latency into the Prefill event and the
/// Decode chain. Independent of instance size (both phases scale ~1/g).
double prefill_cost_share(const LlmTraits& traits);

}  // namespace parva::perfmodel
