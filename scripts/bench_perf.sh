#!/usr/bin/env bash
# Perf-regression report: builds the release preset (-O3) and runs the
# bench/perf_regression harness, writing BENCH_perf.json at the repo root.
# The committed BENCH_perf.json is the reference point for "did this PR
# make the hot paths slower" — regenerate it when a change is supposed to
# shift performance, and diff the numbers when it is not.
#
# Usage: ./scripts/bench_perf.sh [--smoke]
#   --smoke  seconds-long sanity pass (used by verify.sh); does NOT
#            overwrite BENCH_perf.json.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"

echo "== configure + build (release preset) =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)" --target perf_regression

# Pulls one numeric field out of a flat perf-report JSON (empty if absent).
json_field() {
  awk -v key="\"$2\":" '$1 == key { gsub(/[",]/, "", $2); print $2 }' "$1"
}

if [[ "$mode" == "--smoke" ]]; then
  echo "== perf smoke =="
  ./build-release/bench/perf_regression --smoke
else
  # Reference ratios from the committed report, captured before the run
  # overwrites it.
  ref_ratio=""
  ref_arrival=""
  ref_llm=""
  if [[ -f BENCH_perf.json ]]; then
    ref_s1="$(json_field BENCH_perf.json des_events_per_sec_shards_1)"
    ref_s4="$(json_field BENCH_perf.json des_events_per_sec_shards_4)"
    if [[ -n "$ref_s1" && -n "$ref_s4" ]]; then
      ref_ratio="$(awk -v a="$ref_s4" -v b="$ref_s1" 'BEGIN { printf "%.3f", a / b }')"
    fi
    ref_arrival="$(json_field BENCH_perf.json arrival_tournament_speedup_1k)"
    ref_llm="$(json_field BENCH_perf.json des_events_per_sec_llm)"
  fi

  echo "== perf regression (full, medians of 9 reps) =="
  ./build-release/bench/perf_regression --out BENCH_perf.json
  echo "[json: BENCH_perf.json]"

  # Shard-scaling gate: the 4-shard critical-path throughput must stay at
  # least 2x the single-shard number (the decomposition actually scales),
  # and must not regress more than 20% against the committed ratio.
  new_s1="$(json_field BENCH_perf.json des_events_per_sec_shards_1)"
  new_s4="$(json_field BENCH_perf.json des_events_per_sec_shards_4)"
  if [[ -z "$new_s1" || -z "$new_s4" ]]; then
    echo "bench_perf: report is missing the shard-scaling fields" >&2
    exit 1
  fi
  new_ratio="$(awk -v a="$new_s4" -v b="$new_s1" 'BEGIN { printf "%.3f", a / b }')"
  echo "[shard scaling: 4-shard/1-shard = ${new_ratio}x (reference: ${ref_ratio:-none})]"
  if awk -v r="$new_ratio" 'BEGIN { exit !(r < 2.0) }'; then
    echo "bench_perf: shard scaling ${new_ratio}x fell below the 2.0x floor" >&2
    exit 1
  fi
  if [[ -n "$ref_ratio" ]] &&
     awk -v r="$new_ratio" -v ref="$ref_ratio" 'BEGIN { exit !(r < 0.8 * ref) }'; then
    echo "bench_perf: shard scaling ${new_ratio}x regressed >20% vs ${ref_ratio}x" >&2
    exit 1
  fi

  # Arrival-scheduler gate: at ~1k services the tournament tree must beat
  # the flat scan by at least 1.5x (the ratio is box-independent — both
  # runs replay the identical workload on the same core), and must not
  # regress more than 20% against the committed ratio.
  new_arrival="$(json_field BENCH_perf.json arrival_tournament_speedup_1k)"
  if [[ -z "$new_arrival" ]]; then
    echo "bench_perf: report is missing arrival_tournament_speedup_1k" >&2
    exit 1
  fi
  echo "[arrival scheduling: tournament/flat at ~1k services = ${new_arrival}x (reference: ${ref_arrival:-none})]"
  if awk -v r="$new_arrival" 'BEGIN { exit !(r < 1.5) }'; then
    echo "bench_perf: tournament speedup ${new_arrival}x fell below the 1.5x floor" >&2
    exit 1
  fi
  if [[ -n "$ref_arrival" ]] &&
     awk -v r="$new_arrival" -v ref="$ref_arrival" 'BEGIN { exit !(r < 0.8 * ref) }'; then
    echo "bench_perf: tournament speedup ${new_arrival}x regressed >20% vs ${ref_arrival}x" >&2
    exit 1
  fi

  # LLM-engine gate: S7 (prefill/decode chains + KV ledger under evict)
  # event throughput must stay within the standard 20% band of the
  # committed reference. Raw events/s is box-dependent, so the band only
  # applies when a reference exists — same convention as the ratios above,
  # whose reference was produced on the same box that regenerated the
  # report being gated.
  new_llm="$(json_field BENCH_perf.json des_events_per_sec_llm)"
  if [[ -z "$new_llm" ]]; then
    echo "bench_perf: report is missing des_events_per_sec_llm" >&2
    exit 1
  fi
  echo "[llm engine: ${new_llm} events/s on S7 (reference: ${ref_llm:-none})]"
  if [[ -n "$ref_llm" ]] &&
     awk -v r="$new_llm" -v ref="$ref_llm" 'BEGIN { exit !(r < 0.8 * ref) }'; then
    echo "bench_perf: LLM engine throughput ${new_llm} regressed >20% vs ${ref_llm}" >&2
    exit 1
  fi
fi
