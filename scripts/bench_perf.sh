#!/usr/bin/env bash
# Perf-regression report: builds the release preset (-O3) and runs the
# bench/perf_regression harness, writing BENCH_perf.json at the repo root.
# The committed BENCH_perf.json is the reference point for "did this PR
# make the hot paths slower" — regenerate it when a change is supposed to
# shift performance, and diff the numbers when it is not.
#
# Usage: ./scripts/bench_perf.sh [--smoke]
#   --smoke  seconds-long sanity pass (used by verify.sh); does NOT
#            overwrite BENCH_perf.json.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-}"

echo "== configure + build (release preset) =="
cmake --preset release >/dev/null
cmake --build --preset release -j "$(nproc)" --target perf_regression

if [[ "$mode" == "--smoke" ]]; then
  echo "== perf smoke =="
  ./build-release/bench/perf_regression --smoke
else
  echo "== perf regression (full, medians of 9 reps) =="
  ./build-release/bench/perf_regression --out BENCH_perf.json
  echo "[json: BENCH_perf.json]"
fi
