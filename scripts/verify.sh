#!/usr/bin/env bash
# Full verification: plain build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (the asan-ubsan preset).
# Run from the repository root:  ./scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== configure + build (default preset) =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)"

echo "== ctest (default preset) =="
ctest --preset default

echo "== configure + build (asan-ubsan preset) =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$(nproc)"

echo "== ctest (asan-ubsan preset) =="
ctest --preset asan-ubsan

echo "== perf smoke (release preset) =="
./scripts/bench_perf.sh --smoke

echo "verify: OK"
