#!/usr/bin/env bash
# Full verification: plain build + tests, then the same suite under
# AddressSanitizer + UndefinedBehaviorSanitizer (the asan-ubsan preset).
# Run from the repository root:  ./scripts/verify.sh
#   --lint   also run the static-analysis gate (scripts/lint.sh) and the
#            parva_audit golden-fixture suite before the sanitizer stages.
set -euo pipefail
cd "$(dirname "$0")/.."

RUN_LINT=0
for arg in "$@"; do
  case "${arg}" in
    --lint) RUN_LINT=1 ;;
    *)
      echo "usage: $0 [--lint]" >&2
      exit 2
      ;;
  esac
done

echo "== configure + build (default preset) =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$(nproc)"

echo "== ctest (default preset) =="
ctest --preset default

if [[ "${RUN_LINT}" == 1 ]]; then
  echo "== lint: parva_audit contracts + golden fixtures =="
  ./scripts/lint.sh
  ctest --preset default -L lint
fi

echo "== telemetry: exporter goldens + output byte-identity =="
ctest --preset default -L telemetry
# With telemetry enabled the simulator must produce byte-identical output:
# instrumentation only reads state, it never perturbs the RNG or schedule.
TELEMETRY_TMP="$(mktemp -d)"
trap 'rm -rf "${TELEMETRY_TMP}"' EXIT
./build/examples/parvactl simulate --scenario S2 --seed 7 \
  > "${TELEMETRY_TMP}/plain.txt"
./build/examples/parvactl simulate --scenario S2 --seed 7 \
  --telemetry-out "${TELEMETRY_TMP}/tel" 2>/dev/null \
  > "${TELEMETRY_TMP}/instrumented.txt"
diff "${TELEMETRY_TMP}/plain.txt" "${TELEMETRY_TMP}/instrumented.txt"
for ext in prom jsonl csv; do
  test -s "${TELEMETRY_TMP}/tel.${ext}" || {
    echo "missing telemetry export: tel.${ext}" >&2
    exit 1
  }
done

echo "== configure + build (asan-ubsan preset) =="
cmake --preset asan-ubsan >/dev/null
cmake --build --preset asan-ubsan -j "$(nproc)"

echo "== ctest (asan-ubsan preset) =="
ctest --preset asan-ubsan

echo "== perf smoke (release preset) =="
./scripts/bench_perf.sh --smoke

echo "verify: OK"
