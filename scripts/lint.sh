#!/usr/bin/env bash
# Static-analysis gate: parva_audit (the project-specific determinism and
# concurrency contract checker) plus clang-tidy when available.
#
# Usage:
#   ./scripts/lint.sh            # audit src/ + tools/ and run clang-tidy
#   ./scripts/lint.sh --audit-only   # skip clang-tidy even if installed
#   ./scripts/lint.sh --diff     # clang-tidy only on files changed vs HEAD
#
# parva_audit is always required (it builds from this repo); clang-tidy is
# optional because the default container does not ship clang. When it is
# absent the stage is reported as skipped, not passed.
set -euo pipefail
cd "$(dirname "$0")/.."

AUDIT_ONLY=0
DIFF_ONLY=0
for arg in "$@"; do
  case "${arg}" in
    --audit-only) AUDIT_ONLY=1 ;;
    --diff) DIFF_ONLY=1 ;;
    *)
      echo "usage: $0 [--audit-only] [--diff]" >&2
      exit 2
      ;;
  esac
done

echo "== build parva_audit =="
cmake --preset default >/dev/null
cmake --build --preset default --target parva_audit -j "$(nproc)"

echo "== parva_audit: determinism/concurrency contracts (R1-R5) =="
./build/tools/parva_audit src/

echo "== parva_audit: self-check (the checker obeys its own rules) =="
./build/tools/parva_audit tools/parva_audit/

if [[ "${AUDIT_ONLY}" == 1 ]]; then
  echo "lint: OK (clang-tidy skipped: --audit-only)"
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: OK (clang-tidy skipped: not installed; CI runs it)"
  exit 0
fi

echo "== clang-tidy (.clang-tidy profile) =="
# The default preset exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS).
if [[ "${DIFF_ONLY}" == 1 ]]; then
  mapfile -t FILES < <(git diff --name-only HEAD -- 'src/*.cpp' 'tools/*.cpp')
else
  mapfile -t FILES < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
fi
if [[ "${#FILES[@]}" == 0 ]]; then
  echo "lint: OK (no files for clang-tidy)"
  exit 0
fi
clang-tidy -p build --quiet "${FILES[@]}"

echo "lint: OK"
