#!/usr/bin/env bash
# Static-analysis gate: parva_audit (the project-specific determinism and
# concurrency contract checker) plus clang-tidy when available.
#
# Usage:
#   ./scripts/lint.sh                 # audit src/ + tools/ and run clang-tidy
#   ./scripts/lint.sh --audit-only    # skip clang-tidy even if installed
#   ./scripts/lint.sh --diff          # clang-tidy only on files changed vs HEAD
#   ./scripts/lint.sh --format sarif  # audit output format (text|json|sarif)
#   ./scripts/lint.sh --baseline F    # suppress findings accepted in F
#
# parva_audit is always required (it builds from this repo, or set
# PARVA_AUDIT_BIN to an existing binary to skip the build); clang-tidy is
# optional because the default container does not ship clang. When it is
# absent the stage is reported as skipped, not passed.
#
# Exit codes: 0 clean, 1 findings (or canary failure), 2 usage error.
# parva_audit's own exit codes are distinguished: 1 (findings) and >= 2
# (usage/IO error) both fail this script -- a crashed checker must never
# read as a clean pass.
set -euo pipefail
cd "$(dirname "$0")/.."

AUDIT_ONLY=0
DIFF_ONLY=0
FORMAT=text
BASELINE=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --audit-only) AUDIT_ONLY=1 ;;
    --diff) DIFF_ONLY=1 ;;
    --format)
      shift
      [[ $# -gt 0 ]] || { echo "usage: --format text|json|sarif" >&2; exit 2; }
      FORMAT="$1"
      ;;
    --baseline)
      shift
      [[ $# -gt 0 ]] || { echo "usage: --baseline FILE" >&2; exit 2; }
      BASELINE="$1"
      ;;
    *)
      echo "usage: $0 [--audit-only] [--diff] [--format text|json|sarif] [--baseline FILE]" >&2
      exit 2
      ;;
  esac
  shift
done

if [[ -n "${PARVA_AUDIT_BIN:-}" ]]; then
  AUDIT="${PARVA_AUDIT_BIN}"
  [[ -x "${AUDIT}" ]] || { echo "lint: PARVA_AUDIT_BIN=${AUDIT} is not executable" >&2; exit 2; }
else
  echo "== build parva_audit =="
  cmake --preset default >/dev/null
  cmake --build --preset default --target parva_audit -j "$(nproc)"
  AUDIT=./build/tools/parva_audit
fi

# Incremental cache: a warm cache makes the second run near-instant (the
# audit re-analyzes only changed files). Keyed per scan set + config, so
# the three scans below share one directory. --jobs 0 = all cores.
CACHE_DIR="${PARVA_AUDIT_CACHE_DIR:-build/audit_cache}"
JOBS="${PARVA_AUDIT_JOBS:-0}"
AUDIT_ARGS=(--format "${FORMAT}" --cache-dir "${CACHE_DIR}" --jobs "${JOBS}")
[[ -n "${BASELINE}" ]] && AUDIT_ARGS+=(--baseline "${BASELINE}")

SCRATCH_DIR="$(mktemp -d)"
trap 'rm -rf "${SCRATCH_DIR}"' EXIT
STALE_LOG="${SCRATCH_DIR}/stale.log"
RULE_LOG="${SCRATCH_DIR}/rules.log"
: > "${STALE_LOG}"
: > "${RULE_LOG}"

# One summary line over every audit scan (canary excluded): total findings
# plus per-rule counts, and any stale-baseline warnings exactly once even
# when several scans consult the same baseline.
print_summary() {
  if [[ -s "${STALE_LOG}" ]]; then
    sort -u "${STALE_LOG}" >&2
  fi
  local total per_rule
  total="$(wc -l < "${RULE_LOG}" | tr -d ' ')"
  per_rule="$(sort -V "${RULE_LOG}" | uniq -c | awk '{printf " %s=%s", substr($2, 2, length($2) - 2), $1}')"
  echo "lint: audit summary: ${total} finding(s)${per_rule}"
}

# Runs the audit and maps its exit codes: 0 passes through, 1 (findings)
# and >= 2 (usage/IO error) are reported distinctly and fail the script.
# Stale-baseline warnings are diverted to the deduped end-of-run report;
# per-rule finding markers feed the summary line.
run_audit() {
  local rc=0
  local log="${SCRATCH_DIR}/audit.log"
  "${AUDIT}" "${AUDIT_ARGS[@]}" "$@" >"${log}" 2>&1 || rc=$?
  grep "stale baseline entr" "${log}" >> "${STALE_LOG}" || true
  # Cache telemetry stays on stderr so a warm rerun's stdout is
  # byte-identical to the cold run's.
  grep "^parva_audit: cache " "${log}" >&2 || true
  grep -v -e "stale baseline entr" -e "^parva_audit: cache " "${log}" || true
  grep -oE '\[R[0-9]+\]' "${log}" >> "${RULE_LOG}" || true
  if [[ "${rc}" -ge 2 ]]; then
    echo "lint: parva_audit failed to run (exit ${rc}) -- not a clean pass" >&2
    exit "${rc}"
  elif [[ "${rc}" -ne 0 ]]; then
    print_summary
    echo "lint: parva_audit found violations (exit ${rc})" >&2
    exit 1
  fi
}

echo "== parva_audit: determinism/concurrency contracts (R1-R15) =="
run_audit --rules R1-R15 src/

echo "== parva_audit: self-check (the checker obeys its own rules, R1-R15) =="
run_audit tools/parva_audit/

echo "== parva_audit: tree scan (bench/ examples/ tools/ vs committed baseline) =="
run_audit --baseline tools/parva_audit/tree_baseline.txt bench/ examples/ tools/
print_summary

echo "== parva_audit: canary (planted R6-R15 violations must be caught) =="
CANARY_DIR="$(mktemp -d)"
trap 'rm -rf "${SCRATCH_DIR}" "${CANARY_DIR}"' EXIT
cat > "${CANARY_DIR}/canary.cpp" <<'EOF'
#include <mutex>
namespace canary {
enum class NvmlReturn { kSuccess };
NvmlReturn destroy_instance(int gpu);
inline void teardown() { destroy_instance(0); }
class Q { std::mutex m_; int unguarded_ = 0; };
constexpr int kCanaryStartSlots[] = {0, 2, 4};
}  // namespace canary

// R9 canary: a planted lock-order cycle (alpha->beta in one function,
// beta->alpha in another). Never compiled -- parva_audit scans lexically.
struct CanaryMutex {};
struct MutexLock {
  explicit MutexLock(CanaryMutex& m);
};
struct CanaryLocks {
  static CanaryMutex alpha;
  static CanaryMutex beta;
};
inline void canary_alpha_then_beta() {
  MutexLock l1(CanaryLocks::alpha);
  MutexLock l2(CanaryLocks::beta);
}
inline void canary_beta_then_alpha() {
  MutexLock l1(CanaryLocks::beta);
  MutexLock l2(CanaryLocks::alpha);
}

// R10 canary: a literal RNG stream tag. R11 canary: the blocking lock in
// canary_alpha_then_beta is reachable from the hot-path root Shard::advance.
struct Rng {
  static Rng stream(unsigned long long seed, unsigned long long tag,
                    unsigned long long index);
};
struct Shard {
  void advance();
};
inline void Shard::advance() {
  (void)Rng::stream(1, 7, 0);
  canary_alpha_then_beta();
}

// R12 canary helper: iterates an unordered container and is called from
// the fingerprint-named TU planted next to this one.
std::unordered_map<int, int>& canary_cells();
inline int canary_digest_helper() {
  int acc = 0;
  for (const auto& cell : canary_cells()) acc += cell.first;
  return acc;
}

// R13 canary: mixed-unit arithmetic (milliseconds plus seconds).
inline double canary_mixed_units(double span_ms, double budget_s) {
  return span_ms + budget_s;
}

// R15 canary: a reference taken before push_back is used after it.
#include <vector>
inline int canary_use_after_growth(std::vector<int>& v) {
  int& first = v.front();
  v.push_back(1);
  return first;
}
EOF
cat > "${CANARY_DIR}/canary_fingerprint.cpp" <<'EOF'
// R12 canary entry: the file name puts this TU on the export manifest,
// so the unordered iteration in canary.cpp is reachable from here.
// R14 canary: the same manifest membership makes the unsorted loop
// reduction below an export-path accumulation.
#include <vector>
int canary_digest_helper();
inline int canary_emit_fingerprint() { return canary_digest_helper(); }
inline double canary_rollup(const std::vector<double>& xs) {
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) total += xs[i];
  return total;
}
EOF
CANARY_RC=0
CANARY_OUT="$("${AUDIT}" --rules R6-R15 --format text "${CANARY_DIR}" 2>/dev/null)" || CANARY_RC=$?
if [[ "${CANARY_RC}" -ne 1 ]]; then
  echo "lint: canary failed -- expected exit 1 on planted R6-R15 violations, got ${CANARY_RC}" >&2
  exit 1
fi
for rule in R6 R7 R8 R9 R10 R11 R12 R13 R14 R15; do
  if ! grep -q "\[${rule}\]" <<< "${CANARY_OUT}"; then
    echo "lint: canary failed -- planted ${rule} violation was not detected" >&2
    exit 1
  fi
done

if [[ "${AUDIT_ONLY}" == 1 ]]; then
  echo "lint: OK (clang-tidy skipped: --audit-only)"
  exit 0
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: OK (clang-tidy skipped: not installed; CI runs it)"
  exit 0
fi

echo "== clang-tidy (.clang-tidy profile) =="
# The default preset exports compile_commands.json (CMAKE_EXPORT_COMPILE_COMMANDS).
if [[ "${DIFF_ONLY}" == 1 ]]; then
  mapfile -t FILES < <(git diff --name-only HEAD -- 'src/*.cpp' 'tools/*.cpp')
else
  mapfile -t FILES < <(git ls-files 'src/*.cpp' 'tools/*.cpp')
fi
if [[ "${#FILES[@]}" == 0 ]]; then
  echo "lint: OK (no files for clang-tidy)"
  exit 0
fi
clang-tidy -p build --quiet "${FILES[@]}"

echo "lint: OK"
